//! Round-robin file striping, the PVFS "simple stripe" distribution.

/// Opaque file identifier handed out by the metadata server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileHandle(pub u64);

/// One strip-sized unit of a read, destined to a single I/O server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripReq {
    /// Which I/O server holds this strip.
    pub server: usize,
    /// Global strip index within the file (file offset / strip size).
    pub strip_index: u64,
    /// Byte offset within the strip where this piece starts.
    pub offset_in_strip: u64,
    /// Bytes requested from this strip (≤ strip size).
    pub bytes: u64,
}

/// The simple-stripe distribution: strip `i` lives on server `i mod N`.
///
/// ```
/// use sais_pvfs::StripeLayout;
///
/// // One 512 KB read over 8 servers with 64 KB strips: one strip each —
/// // and, on the client, eight concurrent response streams.
/// let layout = StripeLayout::testbed(8);
/// let strips = layout.split(0, 512 * 1024);
/// assert_eq!(strips.len(), 8);
/// assert_eq!(strips.iter().map(|s| s.server).collect::<Vec<_>>(),
///            (0..8).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeLayout {
    /// Strip size in bytes (testbed: 64 KB).
    pub strip_size: u64,
    /// Number of I/O servers.
    pub servers: usize,
}

impl StripeLayout {
    /// A layout with the given strip size over `servers` servers.
    pub fn new(strip_size: u64, servers: usize) -> Self {
        assert!(strip_size > 0 && servers > 0);
        StripeLayout {
            strip_size,
            servers,
        }
    }

    /// The testbed configuration: 64 KB strips.
    pub fn testbed(servers: usize) -> Self {
        StripeLayout::new(64 * 1024, servers)
    }

    /// Which server holds the strip containing `offset`.
    pub fn server_of(&self, offset: u64) -> usize {
        ((offset / self.strip_size) % self.servers as u64) as usize
    }

    /// Decompose `read(offset, len)` into per-strip requests, in file
    /// order.
    pub fn split(&self, offset: u64, len: u64) -> Vec<StripReq> {
        let mut out = Vec::new();
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let strip_index = pos / self.strip_size;
            let offset_in_strip = pos % self.strip_size;
            let take = (self.strip_size - offset_in_strip).min(end - pos);
            out.push(StripReq {
                server: (strip_index % self.servers as u64) as usize,
                strip_index,
                offset_in_strip,
                bytes: take,
            });
            pos += take;
        }
        out
    }

    /// Number of distinct servers a read touches.
    pub fn servers_touched(&self, offset: u64, len: u64) -> usize {
        let mut seen = vec![false; self.servers];
        for s in self.split(offset, len) {
            seen[s.server] = true;
        }
        seen.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_full_strips() {
        let l = StripeLayout::testbed(8);
        // 512 KB read = 8 strips, one per server.
        let reqs = l.split(0, 512 * 1024);
        assert_eq!(reqs.len(), 8);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.server, i);
            assert_eq!(r.strip_index, i as u64);
            assert_eq!(r.offset_in_strip, 0);
            assert_eq!(r.bytes, 64 * 1024);
        }
    }

    #[test]
    fn round_robin_wraps() {
        let l = StripeLayout::testbed(4);
        // 2 MB transfer = 32 strips over 4 servers: 8 each.
        let reqs = l.split(0, 2 * 1024 * 1024);
        assert_eq!(reqs.len(), 32);
        for r in &reqs {
            assert_eq!(r.server, (r.strip_index % 4) as usize);
        }
        let per_server = (0..4)
            .map(|s| reqs.iter().filter(|r| r.server == s).count())
            .collect::<Vec<_>>();
        assert_eq!(per_server, vec![8, 8, 8, 8]);
    }

    #[test]
    fn unaligned_read_clips_edges() {
        let l = StripeLayout::new(100, 3);
        // Read [150, 430): strips 1(50), 2(100), 3(100), 4(30).
        let reqs = l.split(150, 280);
        assert_eq!(reqs.len(), 4);
        assert_eq!(
            reqs[0],
            StripReq {
                server: 1,
                strip_index: 1,
                offset_in_strip: 50,
                bytes: 50
            }
        );
        assert_eq!(reqs[1].bytes, 100);
        assert_eq!(reqs[3].bytes, 30);
        let total: u64 = reqs.iter().map(|r| r.bytes).sum();
        assert_eq!(total, 280);
    }

    #[test]
    fn small_transfer_touches_few_servers() {
        // The paper's 128 KB transfer on 48 servers touches only 2.
        let l = StripeLayout::testbed(48);
        assert_eq!(l.servers_touched(0, 128 * 1024), 2);
        // Consecutive requests rotate across the server set.
        assert_eq!(l.split(128 * 1024, 128 * 1024)[0].server, 2);
        // A 2 MB transfer touches 32 of the 48.
        assert_eq!(l.servers_touched(0, 2 * 1024 * 1024), 32);
        // A 4 MB transfer wraps and touches all 48.
        assert_eq!(l.servers_touched(0, 4 * 1024 * 1024), 48);
    }

    #[test]
    fn server_of_matches_split() {
        let l = StripeLayout::new(64 * 1024, 5);
        for off in [0u64, 64 * 1024, 5 * 64 * 1024 + 17, 999_999] {
            assert_eq!(l.server_of(off), l.split(off, 1)[0].server);
        }
    }

    #[test]
    fn split_conserves_bytes_and_order() {
        let l = StripeLayout::new(4096, 7);
        let reqs = l.split(12345, 1_000_000);
        let total: u64 = reqs.iter().map(|r| r.bytes).sum();
        assert_eq!(total, 1_000_000);
        for w in reqs.windows(2) {
            assert_eq!(w[0].strip_index + 1, w[1].strip_index);
        }
    }
}
