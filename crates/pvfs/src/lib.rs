//! # sais-pvfs — the parallel file system substrate
//!
//! A model of PVFS 2.8.1 as deployed on the paper's testbed: one metadata
//! server plus N I/O servers, files striped round-robin in 64 KB strips.
//! One client `read(offset, len)` fans out into per-server strip requests;
//! each server reads its strips from storage and streams them back over its
//! own GigE uplink — which is precisely what multiplies the client-side
//! interrupt load that SAIs reschedules.
//!
//! The crate also implements **PVFS hints** — the extensible key/value
//! metadata PVFS attaches to operations — because that is the vehicle the
//! paper uses to carry `aff_core_id` from the requesting client core to the
//! servers (`HintMessager` → `PVFS_hint` → `HintCapsuler`).

pub mod client;
pub mod hint;
pub mod layout;
pub mod meta;
pub mod server;

pub use client::ReadTracker;
pub use hint::{HintList, AFF_CORE_ID_KEY};
pub use layout::{FileHandle, StripReq, StripeLayout};
pub use meta::MetadataServer;
pub use server::{IoServer, ServerParams};
