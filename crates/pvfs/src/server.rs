//! The I/O server model: storage service + GigE uplink.

use sais_net::Link;
use sais_sim::{SerialResource, SimDuration, SimRng, SimTime};

/// I/O server cost parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerParams {
    /// Effective streaming storage bandwidth in bytes/second. The testbed
    /// compute nodes have one 7.2k SATA-II drive; sequential streaming with
    /// read-ahead plus partial page-cache residency lands well above raw
    /// random-seek rates.
    pub storage_bw: f64,
    /// Per-request fixed overhead (request decode, BMI/Trove dispatch).
    pub per_request: SimDuration,
    /// Bounded service-time jitter (fraction of the mean).
    pub jitter: f64,
    /// Uplink rate in bits/second (testbed: 1 GbE per server).
    pub uplink_bps: f64,
    /// One-way propagation to the switch.
    pub propagation: SimDuration,
    /// Service-time multiplier for straggler injection (1.0 = healthy).
    pub slowdown: f64,
}

impl Default for ServerParams {
    fn default() -> Self {
        ServerParams {
            storage_bw: 400e6,
            per_request: SimDuration::from_micros(50),
            jitter: 0.05,
            uplink_bps: 1e9,
            propagation: SimDuration::from_micros(20),
            slowdown: 1.0,
        }
    }
}

/// The window during which a response occupies the server's uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// First byte leaves the server.
    pub start: SimTime,
    /// Last byte has left the server (arrival at the switch adds
    /// propagation).
    pub end: SimTime,
}

/// One PVFS I/O server.
#[derive(Debug, Clone)]
pub struct IoServer {
    id: usize,
    params: ServerParams,
    storage: SerialResource,
    uplink: Link,
    rng: SimRng,
    strips_served: u64,
    bytes_served: u64,
}

impl IoServer {
    /// Server `id` with the given parameters; `rng` should be a dedicated
    /// split stream so servers are mutually independent.
    pub fn new(id: usize, params: ServerParams, rng: SimRng) -> Self {
        let uplink = Link::new(params.uplink_bps, params.propagation);
        IoServer {
            id,
            params,
            storage: SerialResource::new(),
            uplink,
            rng,
            strips_served: 0,
            bytes_served: 0,
        }
    }

    /// Server id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Serve a strip request arriving at `now`: queue on storage, then
    /// transmit `wire_bytes` on the uplink. Returns the uplink window.
    pub fn serve_strip(&mut self, now: SimTime, payload: u64, wire_bytes: u64) -> Transmission {
        let mean = self.params.per_request.as_secs_f64() + payload as f64 / self.params.storage_bw;
        let secs = self.rng.jittered(mean, self.params.jitter) * self.params.slowdown;
        let service = SimDuration::from_secs_f64(secs);
        let (_, ready) = self.storage.acquire(now, service);
        let tx_end = self.uplink.send(ready, wire_bytes);
        let tx_start = tx_end
            - SimDuration::for_bytes(wire_bytes, self.uplink.bytes_per_sec())
            - self.params.propagation;
        self.strips_served += 1;
        self.bytes_served += payload;
        Transmission {
            start: tx_start,
            end: tx_end,
        }
    }

    /// Mark the server as a straggler (service times scaled by `factor`).
    pub fn set_slowdown(&mut self, factor: f64) {
        assert!(factor >= 1.0);
        self.params.slowdown = factor;
    }

    /// Strips served so far.
    pub fn strips_served(&self) -> u64 {
        self.strips_served
    }

    /// Payload bytes served so far.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Uplink utilization over `[0, horizon]`.
    pub fn uplink_utilization(&self, horizon: SimTime) -> f64 {
        self.uplink.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> IoServer {
        let params = ServerParams {
            jitter: 0.0,
            ..ServerParams::default()
        };
        IoServer::new(0, params, SimRng::new(7))
    }

    #[test]
    fn single_strip_timing() {
        let mut s = server();
        let tx = s.serve_strip(SimTime::ZERO, 65536, 69_000);
        // Storage: 50 us + 65536/400e6 ≈ 50 + 163.84 us = 213.84 us.
        // Uplink: 69000 B at 125 MB/s = 552 us, then 20 us propagation.
        let expect_ready = SimDuration::from_secs_f64(50e-6 + 65536.0 / 400e6);
        assert_eq!(tx.start, SimTime::ZERO + expect_ready);
        let ser = SimDuration::for_bytes(69_000, 125e6);
        assert_eq!(tx.end, tx.start + ser + SimDuration::from_micros(20));
        assert_eq!(s.strips_served(), 1);
        assert_eq!(s.bytes_served(), 65536);
    }

    #[test]
    fn storage_queues_requests() {
        let mut s = server();
        let t1 = s.serve_strip(SimTime::ZERO, 65536, 69_000);
        let t2 = s.serve_strip(SimTime::ZERO, 65536, 69_000);
        assert!(t2.start > t1.start, "second strip waits for storage");
    }

    #[test]
    fn straggler_slows_service() {
        let mut fast = server();
        let mut slow = server();
        slow.set_slowdown(4.0);
        let tf = fast.serve_strip(SimTime::ZERO, 65536, 69_000);
        let ts = slow.serve_strip(SimTime::ZERO, 65536, 69_000);
        assert!(ts.start > tf.start);
    }

    #[test]
    fn jitter_varies_but_bounded() {
        let params = ServerParams {
            jitter: 0.1,
            // Fast uplink so transmissions never queue behind each other and
            // tx.start equals the storage-ready instant.
            uplink_bps: 1e10,
            ..ServerParams::default()
        };
        let mut s = IoServer::new(0, params, SimRng::new(9));
        let mean = 50e-6 + 65536.0 / 400e6;
        for _ in 0..100 {
            let now = s.storage.busy_until(); // serve back-to-back
            let tx = s.serve_strip(now, 65536, 69_000);
            let service = (tx.start - now).as_secs_f64();
            assert!(service >= mean * 0.9 - 1e-9 && service <= mean * 1.1 + 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn slowdown_below_one_rejected() {
        server().set_slowdown(0.5);
    }
}
