//! Minimal, vendored subset of the `bytes` crate's `Buf`/`BufMut` traits.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the handful of cursor methods it actually uses:
//! big-endian integer reads over `&[u8]` and big-endian integer writes
//! into `Vec<u8>`. Semantics (including panic-on-underflow) match the
//! upstream crate for this subset.

/// Read cursor over a byte source. Implemented for `&[u8]`, where each
/// read consumes from the front of the slice.
pub trait Buf {
    /// Bytes remaining in the source.
    fn remaining(&self) -> usize;

    /// Discard the next `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Read one byte. Panics if empty.
    fn get_u8(&mut self) -> u8;

    /// Read a big-endian `u16`. Panics if fewer than 2 bytes remain.
    fn get_u16(&mut self) -> u16;

    /// Read a big-endian `u32`. Panics if fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32;

    /// Read a big-endian `u64`. Panics if fewer than 8 bytes remain.
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self[..2].try_into().unwrap());
        *self = &self[2..];
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self[..4].try_into().unwrap());
        *self = &self[4..];
        v
    }

    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self[..8].try_into().unwrap());
        *self = &self[8..];
        v
    }
}

/// Write cursor over a growable byte sink. Implemented for `Vec<u8>`.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);

    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_slice(&[9, 9]);
        assert_eq!(buf.len(), 1 + 2 + 4 + 8 + 2);

        let mut view = &buf[..];
        assert_eq!(view.remaining(), buf.len());
        assert_eq!(view.get_u8(), 0xAB);
        assert_eq!(view.get_u16(), 0x1234);
        assert_eq!(view.get_u32(), 0xDEAD_BEEF);
        assert_eq!(view.get_u64(), 0x0102_0304_0506_0708);
        view.advance(2);
        assert_eq!(view.remaining(), 0);
    }

    #[test]
    fn reads_are_big_endian() {
        let raw = [0x12u8, 0x34, 0x56, 0x78];
        let mut view = &raw[..];
        assert_eq!(view.get_u16(), 0x1234);
        assert_eq!(view.get_u16(), 0x5678);
    }

    #[test]
    #[should_panic]
    fn advance_past_end_panics() {
        let raw = [0u8; 3];
        let mut view = &raw[..];
        view.advance(4);
    }
}
