//! Human-readable run reports.
//!
//! Renders a [`RunMetrics`] — or a baseline/candidate pair — into the
//! complete block of paper metrics (bandwidth, L2 miss rate, utilization,
//! `CPU_CLK_UNHALTED`, migrations, latency percentiles, interrupt
//! distribution). Examples and ad-hoc tools use this instead of
//! hand-formatting.

use crate::scenario::RunMetrics;
use sais_metrics::counters::{reduction, speedup};
use std::fmt::Write as _;

/// Render a single run.
pub fn render_run(title: &str, m: &RunMetrics) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ({}) ==", m.policy.label());
    let _ = writeln!(out, "  bandwidth        {:>10.2} MB/s", m.bandwidth_mbs());
    let _ = writeln!(
        out,
        "  data delivered   {:>10.2} MB in {}",
        m.bytes_delivered as f64 / 1e6,
        m.wall_time
    );
    let _ = writeln!(
        out,
        "  requests         {:>10}  (p50 {:.3} ms, p99 {:.3} ms)",
        m.requests_completed,
        m.latency_p50_ms(),
        m.latency_p99_ms()
    );
    let _ = writeln!(out, "  L2 miss rate     {:>10.2} %", m.l2_miss_rate * 100.0);
    let _ = writeln!(
        out,
        "  CPU utilization  {:>10.2} %",
        m.cpu_utilization * 100.0
    );
    let _ = writeln!(
        out,
        "  CPU_CLK_UNHALTED {:>10.2} e9 cycles",
        m.unhalted_cycles as f64 / 1e9
    );
    let _ = writeln!(
        out,
        "  interrupts       {:>10}  ({} hinted, {} clamped)",
        m.interrupts, m.hinted_interrupts, m.clamped_interrupts
    );
    let _ = writeln!(
        out,
        "  strip migrations {:>10}  ({} cache lines moved)",
        m.strip_migrations, m.c2c_lines
    );
    if m.retransmits > 0 || m.parse_errors > 0 || m.fcs_drops > 0 {
        let _ = writeln!(
            out,
            "  failures         {:>10} retransmits, {} parse errors, {} FCS drops",
            m.retransmits, m.parse_errors, m.fcs_drops
        );
    }
    let _ = writeln!(out, "  irq distribution {:?}", m.irq_distribution);
    out
}

/// Render a baseline-vs-candidate comparison with the paper's improvement
/// directions.
pub fn render_comparison(baseline: &RunMetrics, candidate: &RunMetrics) -> String {
    let mut out = String::new();
    let b_label = baseline.policy.label();
    let c_label = candidate.policy.label();
    let _ = writeln!(out, "== {b_label} vs {c_label} ==");
    let mut row = |name: &str, b: f64, c: f64, unit: &str, improvement: f64, tag: &str| {
        let _ = writeln!(
            out,
            "  {name:<18} {b:>12.2}{unit} {c:>12.2}{unit}   {tag} {:+.2}%",
            improvement * 100.0
        );
    };
    row(
        "bandwidth",
        baseline.bandwidth_mbs(),
        candidate.bandwidth_mbs(),
        " MB/s",
        speedup(baseline.bandwidth_mbs(), candidate.bandwidth_mbs()),
        "speed-up",
    );
    row(
        "L2 miss rate",
        baseline.l2_miss_rate * 100.0,
        candidate.l2_miss_rate * 100.0,
        " %",
        reduction(baseline.l2_miss_rate, candidate.l2_miss_rate),
        "reduction",
    );
    row(
        "CPU utilization",
        baseline.cpu_utilization * 100.0,
        candidate.cpu_utilization * 100.0,
        " %",
        reduction(baseline.cpu_utilization, candidate.cpu_utilization),
        "reduction",
    );
    row(
        "CPU_CLK_UNHALTED",
        baseline.unhalted_cycles as f64 / 1e9,
        candidate.unhalted_cycles as f64 / 1e9,
        " e9c",
        reduction(
            baseline.unhalted_cycles as f64,
            candidate.unhalted_cycles as f64,
        ),
        "reduction",
    );
    row(
        "p99 latency",
        baseline.latency_p99_ms(),
        candidate.latency_p99_ms(),
        " ms",
        reduction(baseline.latency_p99_ms(), candidate.latency_p99_ms()),
        "reduction",
    );
    let _ = writeln!(
        out,
        "  strip migrations   {:>12} {:>12}",
        baseline.strip_migrations, candidate.strip_migrations
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{PolicyChoice, ScenarioConfig};

    fn metrics(policy: PolicyChoice) -> RunMetrics {
        let mut cfg = ScenarioConfig::testbed_3gig(8, 256 * 1024);
        cfg.file_size = 4 << 20;
        cfg.policy = policy;
        cfg.run()
    }

    #[test]
    fn single_run_report_contains_all_paper_metrics() {
        let m = metrics(PolicyChoice::SourceAware);
        let r = render_run("test run", &m);
        for needle in [
            "bandwidth",
            "L2 miss rate",
            "CPU utilization",
            "CPU_CLK_UNHALTED",
            "strip migrations",
            "irq distribution",
            "SAIs",
            "p99",
        ] {
            assert!(r.contains(needle), "missing {needle} in:\n{r}");
        }
        // Healthy run: no failure line.
        assert!(!r.contains("failures"));
    }

    #[test]
    fn failure_line_appears_when_relevant() {
        let mut cfg = ScenarioConfig::testbed_3gig(8, 256 * 1024);
        cfg.file_size = 4 << 20;
        cfg.policy = PolicyChoice::SourceAware;
        cfg.faults.loss = 0.1;
        let m = cfg.run();
        let r = render_run("lossy", &m);
        assert!(r.contains("failures"));
        assert!(r.contains("retransmits"));
    }

    #[test]
    fn comparison_shows_directions() {
        let b = metrics(PolicyChoice::LowestLoaded);
        let c = metrics(PolicyChoice::SourceAware);
        let r = render_comparison(&b, &c);
        assert!(r.contains("Irqbalance vs SAIs"));
        assert!(r.contains("speed-up +"), "SAIs must win bandwidth:\n{r}");
        assert!(r.contains("reduction"));
    }
}
