//! The streaming telemetry plane: windowed time-series sampling of a run.
//!
//! When [`ObsConfig::timeseries`](crate::scenario::ObsConfig) is on, the
//! cluster keeps one [`WindowRing`] of composite [`TelemetryCell`]s,
//! bucketed by simulated time (`epoch = now_ns / window_ns`). The hot
//! paths record only values the model already computed — a latency the
//! request path measured anyway, the strip slab's current length, the
//! destination core an interrupt was steered to — so enabling telemetry
//! never perturbs a simulated result (the figure CSVs stay
//! byte-identical; CI pins this). When off, the sampler holds no ring
//! and every entry point is a single branch.
//!
//! Rotation is driven purely by the virtual clock: the cell for a
//! timestamp is `t / width`, independent of how records are batched.
//! Expensive cluster-wide sweeps (policy churn, fault counters) happen
//! once per rotation, attributed to the window that just closed, and the
//! closed window is folded into the streaming
//! [`DetectorState`](sais_obs::DetectorState) immediately — bounded
//! memory, O(1) per-window detector state.
//!
//! All cell fields are integers, so merging same-epoch cells from
//! different seeds or shards is exact, associative and commutative: the
//! sharded sweep fabric folds raw-bits partials in fixed (cell, seed,
//! epoch) order and lands on the same bytes for any shard count.

use sais_metrics::{Histogram, WindowPayload, WindowRing};
use sais_obs::{DetectorConfig, DetectorState, TelemetryVerdict, WindowStats};

/// Default window width: 1 ms of simulated time.
pub const DEFAULT_WINDOW_NS: u64 = 1_000_000;
/// Default ring capacity: 4096 windows (≈4 s of history at the default
/// width) — bounded memory regardless of run length.
pub const DEFAULT_WINDOW_CAPACITY: usize = 4096;

/// One telemetry window's composite payload. Every field merges exactly:
/// histograms bucket-add, counters add, gauges max.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryCell {
    /// Request completion latencies recorded in the window, nanoseconds.
    pub latency: Histogram,
    /// Peak simultaneously in-flight strips observed in the window.
    pub queue_high_water: u64,
    /// Hardirq batches handled per core (all clients), for occupancy.
    pub core_irqs: Vec<u64>,
    /// Flows on the degraded RSS path when the window closed (gauge).
    pub degraded_flows: u64,
    /// Hint-less streaks crossing the degrade threshold in the window.
    pub degrades: u64,
    /// Degraded flows re-armed by a valid hint in the window.
    pub repromotes: u64,
    /// Fault events (retransmits, timeouts, drops, parse errors,
    /// stripped options, …) in the window.
    pub faults: u64,
}

impl WindowPayload for TelemetryCell {
    fn absorb(&mut self, other: &Self) {
        self.latency.merge(&other.latency);
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        if self.core_irqs.len() < other.core_irqs.len() {
            self.core_irqs.resize(other.core_irqs.len(), 0);
        }
        for (a, b) in self.core_irqs.iter_mut().zip(other.core_irqs.iter()) {
            *a += b;
        }
        self.degraded_flows = self.degraded_flows.max(other.degraded_flows);
        self.degrades += other.degrades;
        self.repromotes += other.repromotes;
        self.faults += other.faults;
    }
}

impl TelemetryCell {
    /// Summarize the cell as the integer statistics the detectors and the
    /// `sais-timeseries/v1` exporter consume.
    pub fn stats(&self, epoch: u64) -> WindowStats {
        WindowStats {
            epoch,
            samples: self.latency.count(),
            p50_ns: self.latency.quantile(0.5),
            p99_ns: self.latency.quantile(0.99),
            p999_ns: self.latency.quantile(0.999),
            queue_high_water: self.queue_high_water,
            irqs: self.core_irqs.iter().sum(),
            busiest_core_irqs: self.core_irqs.iter().copied().max().unwrap_or(0),
            active_cores: self.core_irqs.iter().filter(|&&c| c > 0).count() as u64,
            degraded_flows: self.degraded_flows,
            degrades: self.degrades,
            repromotes: self.repromotes,
            faults: self.faults,
        }
    }
}

/// A finished run's windowed time series. `None` ring ⇔ telemetry was
/// off: the disabled state owns no heap at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySeries {
    ring: Option<WindowRing<TelemetryCell>>,
}

impl TelemetrySeries {
    /// An enabled, empty series.
    pub fn new(window_ns: u64, capacity: usize) -> Self {
        TelemetrySeries {
            ring: Some(WindowRing::new(window_ns, capacity)),
        }
    }

    /// The disabled series (no ring, no heap).
    pub fn disabled() -> Self {
        TelemetrySeries::default()
    }

    /// Whether telemetry was on for the run.
    pub fn is_enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Window width in nanoseconds (0 when disabled).
    pub fn window_ns(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.width_ns())
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.len())
    }

    /// Whether the series holds no windows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying ring, if enabled.
    pub fn ring(&self) -> Option<&WindowRing<TelemetryCell>> {
        self.ring.as_ref()
    }

    /// Iterate retained windows as `(epoch, cell)`, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &TelemetryCell)> {
        self.ring.iter().flat_map(|r| r.windows())
    }

    /// Summarize every retained window, oldest first.
    pub fn stats(&self) -> Vec<WindowStats> {
        self.windows().map(|(e, c)| c.stats(e)).collect()
    }

    /// Fold another run's series into this one, aligning by epoch. Exact
    /// (integer) and grouping-independent; a disabled operand is a no-op,
    /// and merging into a disabled series adopts the other's ring.
    pub fn merge(&mut self, other: &TelemetrySeries) {
        let Some(other_ring) = other.ring.as_ref() else {
            return;
        };
        match self.ring.as_mut() {
            Some(ring) => ring.merge(other_ring),
            None => self.ring = Some(other_ring.clone()),
        }
    }
}

/// The cluster's live sampler: the ring being filled plus the rotation
/// bookkeeping and the streaming detector fold.
#[derive(Debug, Clone)]
pub struct TelemetrySampler {
    series: TelemetrySeries,
    width_ns: u64,
    /// Epoch currently accumulating (valid once `started`).
    cur_epoch: u64,
    started: bool,
    /// Cumulative cluster totals already attributed to closed windows.
    last_degrades: u64,
    last_repromotes: u64,
    last_faults: u64,
    detector: DetectorState,
}

impl TelemetrySampler {
    /// A disabled sampler: no ring, every entry point one branch.
    pub fn disabled() -> Self {
        TelemetrySampler {
            series: TelemetrySeries::disabled(),
            width_ns: 0,
            cur_epoch: 0,
            started: false,
            last_degrades: 0,
            last_repromotes: 0,
            last_faults: 0,
            detector: DetectorState::new(DetectorConfig::default()),
        }
    }

    /// An enabled sampler with the given window geometry.
    pub fn enabled(window_ns: u64, capacity: usize) -> Self {
        TelemetrySampler {
            series: TelemetrySeries::new(window_ns.max(1), capacity.max(1)),
            width_ns: window_ns.max(1),
            ..TelemetrySampler::disabled()
        }
    }

    /// Whether sampling is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.series.is_enabled()
    }

    /// The epoch containing `t_ns`.
    #[inline]
    fn epoch_of(&self, t_ns: u64) -> u64 {
        t_ns / self.width_ns
    }

    /// True when `t_ns` falls past the accumulating window — the caller
    /// must run its cluster-wide sweep and call [`Self::rotate`].
    #[inline]
    pub fn needs_rotation(&self, t_ns: u64) -> bool {
        self.is_enabled() && self.started && self.epoch_of(t_ns) > self.cur_epoch
    }

    /// Close the accumulating window: attribute the sweep deltas
    /// (cumulative cluster totals) and the degraded-flow gauge to it,
    /// fold it — and any gap windows up to `t_ns` — into the streaming
    /// detectors, and start accumulating the window containing `t_ns`.
    pub fn rotate(
        &mut self,
        t_ns: u64,
        degrades: u64,
        repromotes: u64,
        faults: u64,
        degraded: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        let next = self.epoch_of(t_ns);
        self.close_windows(next, degrades, repromotes, faults, degraded);
        let ring = self.series.ring.as_mut().expect("enabled sampler has ring");
        ring.advance_to(t_ns);
        self.cur_epoch = next;
        self.started = true;
    }

    /// Close the windows `cur_epoch..next`: attribute the sweep deltas
    /// and the gauge to the accumulating one, then fold each (including
    /// empty gap windows) into the streaming detectors.
    fn close_windows(
        &mut self,
        next: u64,
        degrades: u64,
        repromotes: u64,
        faults: u64,
        degraded: u64,
    ) {
        let cur = self.cur_epoch;
        let width = self.width_ns;
        let d_degrades = degrades.saturating_sub(self.last_degrades);
        let d_repromotes = repromotes.saturating_sub(self.last_repromotes);
        let d_faults = faults.saturating_sub(self.last_faults);
        let ring = self.series.ring.as_mut().expect("enabled sampler has ring");
        if self.started {
            ring.record_at(cur.saturating_mul(width), |c| {
                c.degrades += d_degrades;
                c.repromotes += d_repromotes;
                c.faults += d_faults;
                c.degraded_flows = c.degraded_flows.max(degraded);
            });
            for epoch in cur..next {
                let stats = ring
                    .window(epoch)
                    .map(|c| c.stats(epoch))
                    .unwrap_or(WindowStats {
                        epoch,
                        ..WindowStats::default()
                    });
                self.detector.observe(&stats);
            }
        }
        self.last_degrades = degrades;
        self.last_repromotes = repromotes;
        self.last_faults = faults;
    }

    /// Record one request completion latency.
    #[inline]
    pub fn record_latency(&mut self, t_ns: u64, latency_ns: u64) {
        if let Some(ring) = self.series.ring.as_mut() {
            ring.record_at(t_ns, |c| c.latency.record(latency_ns));
            self.touch(t_ns);
        }
    }

    /// Record one handled hardirq batch: destination core occupancy and
    /// the in-flight queue depth at dispatch.
    #[inline]
    pub fn record_irq(&mut self, t_ns: u64, core: usize, queue_depth: u64) {
        if let Some(ring) = self.series.ring.as_mut() {
            ring.record_at(t_ns, |c| {
                if c.core_irqs.len() <= core {
                    c.core_irqs.resize(core + 1, 0);
                }
                c.core_irqs[core] += 1;
                c.queue_high_water = c.queue_high_water.max(queue_depth);
            });
            self.touch(t_ns);
        }
    }

    /// Start accumulation on the first record (epoch 0 onward).
    #[inline]
    fn touch(&mut self, t_ns: u64) {
        if !self.started {
            self.cur_epoch = self.epoch_of(t_ns);
            self.started = true;
        }
    }

    /// Final sweep at end of run: close the last window with the final
    /// cumulative totals and fold it into the detectors, without opening
    /// a trailing empty window.
    pub fn finish(&mut self, degrades: u64, repromotes: u64, faults: u64, degraded: u64) {
        if !self.is_enabled() || !self.started {
            return;
        }
        let next = self.cur_epoch + 1;
        self.close_windows(next, degrades, repromotes, faults, degraded);
        self.cur_epoch = next;
    }

    /// Windows opened so far (rotation count, incl. gap fills).
    pub fn rotations(&self) -> u64 {
        self.series.ring.as_ref().map_or(0, |r| r.rotations())
    }

    /// Windows folded through the streaming detectors so far.
    pub fn detector_evals(&self) -> u64 {
        self.detector.evals()
    }

    /// Verdicts the streaming detectors have reached.
    pub fn verdicts(&self) -> &[TelemetryVerdict] {
        self.detector.verdicts()
    }

    /// The accumulated series (clone for `RunMetrics`).
    pub fn series(&self) -> &TelemetrySeries {
        &self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sampler_owns_no_heap_and_ignores_records() {
        let mut s = TelemetrySampler::disabled();
        assert!(!s.is_enabled());
        for t in 0..10_000u64 {
            s.record_latency(t * 1_000, 42);
            s.record_irq(t * 1_000, 3, t);
        }
        s.finish(9, 9, 9, 9);
        assert_eq!(s.rotations(), 0);
        assert_eq!(s.detector_evals(), 0);
        assert!(s.series().is_empty());
        assert!(!s.needs_rotation(u64::MAX));
    }

    #[test]
    fn rotation_attributes_deltas_to_closing_window() {
        let mut s = TelemetrySampler::enabled(1_000, 64);
        s.record_latency(100, 5_000);
        s.record_irq(500, 0, 3);
        assert!(s.needs_rotation(1_500));
        // Cluster totals at the first rotation: 2 degrades, 1 re-promote.
        s.rotate(1_500, 2, 1, 10, 4);
        s.record_irq(1_600, 1, 7);
        // Totals advanced by (1, 1, 5) during window 1.
        s.finish(3, 2, 15, 2);
        let stats = s.series().stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].epoch, 0);
        assert_eq!(stats[0].samples, 1);
        assert_eq!(stats[0].degrades, 2);
        assert_eq!(stats[0].repromotes, 1);
        assert_eq!(stats[0].faults, 10);
        assert_eq!(stats[0].degraded_flows, 4);
        assert_eq!(stats[0].queue_high_water, 3);
        assert_eq!(stats[1].epoch, 1);
        assert_eq!(stats[1].degrades, 1);
        assert_eq!(stats[1].repromotes, 1);
        assert_eq!(stats[1].faults, 5);
        assert_eq!(stats[1].queue_high_water, 7);
        assert_eq!(s.detector_evals(), 2);
    }

    #[test]
    fn gap_windows_are_observed_as_empty() {
        let mut s = TelemetrySampler::enabled(100, 64);
        s.record_irq(50, 0, 1);
        // Jump 5 windows ahead: epochs 0..=4 close (0 real, 1–4 gaps).
        s.rotate(550, 0, 0, 0, 0);
        assert_eq!(s.detector_evals(), 5);
        s.finish(0, 0, 0, 0);
        assert_eq!(s.detector_evals(), 6);
        let stats = s.series().stats();
        assert_eq!(stats.len(), 6);
        assert!(stats[1..].iter().all(|w| w.irqs == 0));
    }

    #[test]
    fn series_merge_is_exact_and_adopts_into_disabled() {
        let mut a = TelemetrySampler::enabled(1_000, 64);
        a.record_latency(0, 1_000);
        a.finish(1, 0, 2, 1);
        let mut b = TelemetrySampler::enabled(1_000, 64);
        b.record_latency(100, 3_000);
        b.record_irq(1_200, 2, 9);
        b.finish(0, 1, 4, 0);

        let mut merged = TelemetrySeries::disabled();
        merged.merge(a.series());
        merged.merge(b.series());
        let stats = merged.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].samples, 2);
        assert_eq!(stats[0].degrades, 1);
        assert_eq!(stats[0].repromotes, 1);
        assert_eq!(stats[0].faults, 6);
        assert_eq!(stats[1].queue_high_water, 9);

        // Merging in the opposite order lands on identical windows.
        let mut rev = TelemetrySeries::disabled();
        rev.merge(b.series());
        rev.merge(a.series());
        assert_eq!(rev, merged);

        // A disabled operand changes nothing.
        let snapshot = merged.clone();
        merged.merge(&TelemetrySeries::disabled());
        assert_eq!(merged, snapshot);
    }
}
