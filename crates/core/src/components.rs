//! The SAIs components of the paper's Fig. 3.
//!
//! Client side: `HintMessager` (step 1–2: put `aff_core_id` into the
//! request), `SrcParser` (step 4: pull it out of the incoming IP header in
//! the NIC driver), `IMComposer` (step 5: compose the interrupt message
//! with that destination). Server side: `HintCapsuler` (step 3: copy the
//! hint from the PVFS request into every response packet's IP options).

use sais_apic::{IoApic, Policy, SteerCtx};
use sais_cpu::{CoreId, CpuCore, LoadTracker};
use sais_metrics::Counter;
use sais_net::{Ipv4Header, ParseError, PodFrame};
use sais_pvfs::HintList;
use sais_sim::SimTime;

/// Client-side: attaches the requesting core's id to outgoing PVFS
/// requests as a `PVFS_hint`.
#[derive(Debug, Clone, Default)]
pub struct HintMessager {
    /// Requests tagged.
    pub tagged: Counter,
    /// Requests that could not be tagged (core id beyond the 5-bit
    /// option space).
    pub untaggable: Counter,
}

impl HintMessager {
    /// A fresh messager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the hint list for a request issued from `core`. Returns a
    /// hint-less list when the core id cannot be expressed (> 31) — the
    /// request still works, it just falls back to conventional steering.
    pub fn tag_request(&mut self, core: CoreId) -> HintList {
        if core < 32 {
            self.tagged.inc();
            HintList::new().with_aff_core_id(core as u32)
        } else {
            self.untaggable.inc();
            HintList::new()
        }
    }
}

/// Server-side: copies the request's `aff_core_id` hint into the IP
/// options of a response packet header.
#[derive(Debug, Clone, Default)]
pub struct HintCapsuler {
    /// Response headers stamped with the option.
    pub stamped: Counter,
    /// Responses sent without an option (request carried no usable hint).
    pub unstamped: Counter,
}

impl HintCapsuler {
    /// A fresh capsuler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamp `header` with the affinity from `hints`, if present and in
    /// range.
    pub fn capsule(&mut self, hints: &HintList, header: Ipv4Header) -> Ipv4Header {
        match hints.aff_core_id() {
            Some(core) if core < 32 => {
                self.stamped.inc();
                header.with_affinity(core as u8)
            }
            _ => {
                self.unstamped.inc();
                header
            }
        }
    }

    /// Fast-path twin of [`HintCapsuler::capsule`]: decide the stamped
    /// affinity without building a header. Counter behaviour is identical
    /// (`stamped`/`unstamped` advance exactly as on the byte path), and the
    /// returned value is exactly the option the byte path would encode.
    pub fn capsule_pod(&mut self, hints: &HintList) -> Option<u8> {
        match hints.aff_core_id() {
            Some(core) if core < 32 => {
                self.stamped.inc();
                Some(core as u8)
            }
            _ => {
                self.unstamped.inc();
                None
            }
        }
    }
}

/// Client-side NIC-driver component: parses incoming IP headers and
/// extracts the affinity hint. Must never panic on hostile bytes — a
/// malformed or corrupted packet simply yields no hint and the interrupt
/// follows the fallback policy.
#[derive(Debug, Clone, Default)]
pub struct SrcParser {
    /// Headers parsed successfully with a hint present.
    pub with_hint: Counter,
    /// Headers parsed successfully but carrying no hint.
    pub without_hint: Counter,
    /// Headers that failed to parse (checksum, truncation, bad options).
    pub parse_errors: Counter,
}

impl SrcParser {
    /// A fresh parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse the header bytes of an incoming packet and return the hinted
    /// core, if any.
    pub fn parse(&mut self, header_bytes: &[u8]) -> Option<CoreId> {
        match Ipv4Header::decode(header_bytes) {
            Ok(h) => match h.affinity_hint() {
                Some(core) => {
                    self.with_hint.inc();
                    Some(core as CoreId)
                }
                None => {
                    self.without_hint.inc();
                    None
                }
            },
            Err(_e @ ParseError::BadChecksum { .. })
            | Err(_e @ ParseError::Truncated)
            | Err(_e @ ParseError::BadVersion(_))
            | Err(_e @ ParseError::BadIhl(_))
            | Err(_e @ ParseError::BadOption) => {
                self.parse_errors.inc();
                None
            }
        }
    }

    /// Fast-path twin of [`SrcParser::parse`] for an intact [`PodFrame`]:
    /// a frame the simulation built itself always re-parses successfully,
    /// so the only question is whether it carries a hint. Counters advance
    /// exactly as the byte path would (`with_hint`/`without_hint`; never
    /// `parse_errors`). The POD ⇄ byte equivalence is pinned by the
    /// property tests in `sais-net`.
    pub fn parse_pod(&mut self, frame: &PodFrame) -> Option<CoreId> {
        match frame.hint() {
            Some(core) => {
                self.with_hint.inc();
                Some(core as CoreId)
            }
            None => {
                self.without_hint.inc();
                None
            }
        }
    }
}

/// Client-side: composes the interrupt message — i.e. runs the steering
/// policy with the parsed hint and routes through the I/O APIC.
#[derive(Debug)]
pub struct IMComposer {
    policy: Policy,
    /// Interrupts composed.
    pub composed: Counter,
    /// Interrupts that followed a source hint.
    pub hinted: Counter,
}

impl IMComposer {
    /// A composer driving the given policy.
    pub fn new(policy: Policy) -> Self {
        IMComposer {
            policy,
            composed: Counter::new(),
            hinted: Counter::new(),
        }
    }

    /// The active policy (e.g. for kind labels).
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Compose and deliver one interrupt through `ioapic` pin `pin`.
    /// Returns the core the interrupt was delivered to.
    #[allow(clippy::too_many_arguments)]
    pub fn compose(
        &mut self,
        ioapic: &mut IoApic,
        pin: usize,
        now: SimTime,
        hint: Option<CoreId>,
        flow: u64,
        cores: &[CpuCore],
        loads: &LoadTracker,
    ) -> CoreId {
        let effective_hint = if self.policy.uses_hint() { hint } else { None };
        if effective_hint.is_some() {
            self.hinted.inc();
        }
        self.composed.inc();
        let ctx = SteerCtx {
            now,
            pin,
            hint: effective_hint,
            flow,
            cores,
            loads,
        };
        ioapic.route(pin, &mut self.policy, &ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sais_sim::SimDuration;

    #[test]
    fn hint_messager_end_to_end_with_capsuler() {
        let mut hm = HintMessager::new();
        let mut hc = HintCapsuler::new();
        let hints = hm.tag_request(6);
        assert_eq!(hints.aff_core_id(), Some(6));
        let hdr = Ipv4Header::tcp(1, 2, 0, 1456);
        let stamped = hc.capsule(&hints, hdr);
        assert_eq!(stamped.affinity_hint(), Some(6));
        assert_eq!(hm.tagged.get(), 1);
        assert_eq!(hc.stamped.get(), 1);
    }

    #[test]
    fn oversized_core_id_degrades_gracefully() {
        let mut hm = HintMessager::new();
        let mut hc = HintCapsuler::new();
        let hints = hm.tag_request(40); // beyond the 5-bit space
        assert_eq!(hints.aff_core_id(), None);
        let hdr = hc.capsule(&hints, Ipv4Header::tcp(1, 2, 0, 100));
        assert_eq!(hdr.affinity_hint(), None);
        assert_eq!(hm.untaggable.get(), 1);
        assert_eq!(hc.unstamped.get(), 1);
    }

    #[test]
    fn src_parser_full_path() {
        let mut hm = HintMessager::new();
        let mut hc = HintCapsuler::new();
        let mut sp = SrcParser::new();
        let hdr = hc.capsule(&hm.tag_request(3), Ipv4Header::tcp(1, 2, 0, 100));
        let bytes = hdr.encode();
        assert_eq!(sp.parse(&bytes), Some(3));
        assert_eq!(sp.with_hint.get(), 1);
    }

    #[test]
    fn src_parser_survives_corruption() {
        let mut sp = SrcParser::new();
        let hdr = Ipv4Header::tcp(1, 2, 0, 100).with_affinity(9);
        let mut bytes = hdr.encode();
        bytes[20] ^= 0xFF; // destroy the option byte
        assert_eq!(sp.parse(&bytes), None);
        assert_eq!(sp.parse_errors.get(), 1);
        // Random garbage too.
        assert_eq!(sp.parse(&[0u8; 7]), None);
        assert_eq!(sp.parse(&[0xFFu8; 64]), None);
        assert_eq!(sp.parse_errors.get(), 3);
    }

    #[test]
    fn src_parser_counts_plain_headers() {
        let mut sp = SrcParser::new();
        let bytes = Ipv4Header::tcp(1, 2, 0, 100).encode();
        assert_eq!(sp.parse(&bytes), None);
        assert_eq!(sp.without_hint.get(), 1);
        assert_eq!(sp.parse_errors.get(), 0);
    }

    #[test]
    fn composer_delivers_hint_under_sais_and_ignores_it_under_baseline() {
        let cores: Vec<CpuCore> = (0..8).map(CpuCore::new).collect();
        let loads = LoadTracker::new(8, SimDuration::from_millis(10));
        let mut ioapic = IoApic::new(1, 8);

        let mut sais = IMComposer::new(Policy::sais());
        let dest = sais.compose(
            &mut ioapic,
            0,
            SimTime::from_micros(1),
            Some(5),
            0,
            &cores,
            &loads,
        );
        assert_eq!(dest, 5);
        assert_eq!(sais.hinted.get(), 1);

        let mut rr = IMComposer::new(Policy::round_robin());
        let d0 = rr.compose(
            &mut ioapic,
            0,
            SimTime::from_micros(1),
            Some(5),
            0,
            &cores,
            &loads,
        );
        let d1 = rr.compose(
            &mut ioapic,
            0,
            SimTime::from_micros(1),
            Some(5),
            0,
            &cores,
            &loads,
        );
        assert_eq!((d0, d1), (0, 1), "round robin ignores the hint");
        assert_eq!(rr.hinted.get(), 0);
    }
}
