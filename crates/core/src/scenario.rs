//! Experiment configuration and run-level metrics.
//!
//! A [`ScenarioConfig`] describes one cell of a paper figure (policy ×
//! transfer size × server count × NIC), and `run()` executes it on the
//! cluster model, returning the [`RunMetrics`] from which every figure's
//! rows are derived.

use crate::cluster::Cluster;
use sais_apic::{Policy, PolicyKind};
use sais_cpu::CpuParams;
use sais_mem::MemParams;
use sais_pvfs::ServerParams;
use sais_sim::{Engine, SimDuration, SimTime};

/// Which steering policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Strict rotation over cores (Linux/Intel default mode).
    RoundRobin,
    /// Everything on one core (Linux/AMD lowest-priority default).
    Dedicated,
    /// irqbalance: lightest core per interrupt. The paper's baseline.
    LowestLoaded,
    /// The irqbalance daemon at its real granularity: the IRQ line re-homes
    /// to the lightest core once per interval (default 10 s scaled to the
    /// simulated run lengths: 100 ms here).
    IrqbalanceDaemon,
    /// RSS-style static flow hashing.
    FlowHash,
    /// SAIs.
    SourceAware,
    /// Future-work hybrid: hint unless the hinted core is overloaded.
    Hybrid,
}

impl PolicyChoice {
    /// Instantiate the policy state.
    pub fn build(self) -> Policy {
        match self {
            PolicyChoice::RoundRobin => Policy::round_robin(),
            PolicyChoice::Dedicated => Policy::Dedicated { core: 0 },
            PolicyChoice::LowestLoaded => Policy::LowestLoaded,
            PolicyChoice::IrqbalanceDaemon => {
                Policy::balanced_daemon(SimDuration::from_millis(100))
            }
            PolicyChoice::FlowHash => Policy::FlowHash,
            PolicyChoice::SourceAware => Policy::sais(),
            PolicyChoice::Hybrid => Policy::hybrid(SimDuration::from_micros(200)),
        }
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        self.kind().label()
    }

    /// Corresponding kind.
    pub fn kind(self) -> PolicyKind {
        match self {
            PolicyChoice::RoundRobin => PolicyKind::RoundRobin,
            PolicyChoice::Dedicated => PolicyKind::Dedicated,
            PolicyChoice::LowestLoaded => PolicyKind::LowestLoaded,
            PolicyChoice::IrqbalanceDaemon => PolicyKind::BalancedDaemon,
            PolicyChoice::FlowHash => PolicyKind::FlowHash,
            PolicyChoice::SourceAware => PolicyKind::SourceAware,
            PolicyChoice::Hybrid => PolicyKind::Hybrid,
        }
    }
}

/// Direction of the benchmark I/O.
///
/// The paper scopes itself to reads: "Because there is not a data locality
/// issue associated with interrupt scheduling in parallel I/O write
/// operations, our study focuses on parallel I/O read." The write path is
/// implemented so that claim can be *demonstrated* (`abl_write_path`): on
/// writes the client only receives tiny acknowledgements, so interrupt
/// placement has nothing to win.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDirection {
    /// IOR read (the paper's experiments).
    Read,
    /// IOR write.
    Write,
}

/// Observability switches for one run.
///
/// Everything defaults to **off**, and the disabled state is zero-cost by
/// contract: every record call in the hot path starts with a branch on a
/// single flag and touches nothing else (see `sais-obs`). Enabling spans
/// or stage histograms never changes simulated results — the recorder only
/// reads times the model already computed.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Record request/strip/interrupt/copy spans into a
    /// [`sais_obs::FlightRecorder`] for Perfetto export.
    pub spans: bool,
    /// Record per-stage latency histograms
    /// ([`sais_obs::StageHistograms`]).
    pub stages: bool,
    /// Maximum spans retained when `spans` is on; beginnings past the cap
    /// are counted as dropped.
    pub span_capacity: usize,
    /// Sample the run into windowed time-series telemetry
    /// ([`crate::telemetry::TelemetrySeries`]) and fold the streaming
    /// saturation/livelock/tail detectors over each closing window.
    pub timeseries: bool,
    /// Window width in nanoseconds of simulated time when `timeseries`
    /// is on.
    pub window_ns: u64,
    /// Maximum windows retained when `timeseries` is on; older windows
    /// are evicted (bounded memory regardless of run length).
    pub window_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            spans: false,
            stages: false,
            span_capacity: 1 << 16,
            timeseries: false,
            window_ns: crate::telemetry::DEFAULT_WINDOW_NS,
            window_capacity: crate::telemetry::DEFAULT_WINDOW_CAPACITY,
        }
    }
}

impl ObsConfig {
    /// Everything on — spans, stage histograms and windowed telemetry —
    /// with the default capacities.
    pub fn full() -> Self {
        ObsConfig {
            spans: true,
            stages: true,
            timeseries: true,
            ..ObsConfig::default()
        }
    }

    /// Windowed telemetry only, at the default window geometry.
    pub fn timeseries() -> Self {
        ObsConfig {
            timeseries: true,
            ..ObsConfig::default()
        }
    }
}

/// Deterministic fault-injection plan for one run.
///
/// Every fault draws from its **own** seeded RNG stream
/// ([`FaultPlan::seed`]), fully independent of the simulation RNG
/// (`ScenarioConfig::seed`): enabling or disabling faults never perturbs a
/// single draw of the clean-path stream, so `FaultPlan::none()` leaves
/// every figure CSV byte-identical, and the same `(seed, FaultPlan)` pair
/// replays the exact same fault schedule. Which flows the
/// option-stripping middlebox hits is a pure hash of the flow id
/// ([`FaultPlan::strips_flow`]) — stateless, so it cannot depend on event
/// order either.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault RNG stream (independent of the simulation seed).
    pub seed: u64,
    /// Per-TCP-segment loss probability on the server→client link. Lost
    /// segments are recovered by the NewReno sender in `sais-net` (fast
    /// retransmit or RTO), which delays the strip's arrival and counts
    /// `retransmits`/`tcp_timeouts`.
    pub loss: f64,
    /// Probability a delivered batch's header bytes are corrupted before
    /// SrcParser sees them (wire/DMA bit flips). Half are caught by the
    /// Ethernet FCS, half by the IPv4 checksum; both fail closed to
    /// hint-less steering.
    pub corruption: f64,
    /// Per-segment duplication probability on the link. The TCP receiver
    /// discards the copies (`tcp_duplicates`), but their ACKs still
    /// perturb the sender's window.
    pub duplication: f64,
    /// Per-segment reordering probability: the segment is delayed by
    /// [`FaultPlan::reorder_delay`], letting later segments overtake it
    /// (Flow-Director-style reordering). Enough overtaking triggers
    /// spurious fast retransmits.
    pub reorder: f64,
    /// How late a reordered segment arrives.
    pub reorder_delay: SimDuration,
    /// Probability a hardirq is simply delayed by
    /// [`FaultPlan::irq_delay_by`] (e.g. host IRQ masking).
    pub irq_delay: f64,
    /// How late a delayed hardirq fires.
    pub irq_delay_by: SimDuration,
    /// Probability a hardirq batch is merged into its successor (extra
    /// coalescing beyond the NIC's configured `coalesce_frames`): fewer,
    /// fatter, later interrupts.
    pub irq_coalesce: f64,
    /// Fraction of flows whose responses pass through a middlebox that
    /// strips unknown IP options — including the SAIs affinity option.
    /// Stripped flows carry no hint, ever; the SAIs policy must degrade
    /// to RSS-style steering for them instead of panicking.
    pub option_strip: f64,
    /// If set, the option-stripping middlebox is decommissioned at this
    /// simulation time: stripped flows see clean, hint-carrying responses
    /// afterwards and SAIs must *re-promote* them (streak reset, RSS →
    /// hint steering, `degraded_flows` back to zero). `None` (the
    /// default) keeps the middlebox in place for the whole run — the
    /// behavior every pre-existing plan had.
    pub option_strip_until: Option<SimDuration>,
    /// Straggling I/O servers: `(server index, service-time multiplier)`.
    pub stragglers: Vec<(usize, f64)>,
}

impl FaultPlan {
    /// The empty plan: no faults of any kind. This is the default on
    /// every [`ScenarioConfig`], and it is contract-tested to leave run
    /// results bit-identical to a run without a fault layer at all.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0xFA_017,
            loss: 0.0,
            corruption: 0.0,
            duplication: 0.0,
            reorder: 0.0,
            reorder_delay: SimDuration::from_micros(150),
            irq_delay: 0.0,
            irq_delay_by: SimDuration::from_micros(50),
            irq_coalesce: 0.0,
            option_strip: 0.0,
            option_strip_until: None,
            stragglers: Vec::new(),
        }
    }

    /// Does this plan inject anything at all?
    pub fn is_none(&self) -> bool {
        self.loss == 0.0
            && self.corruption == 0.0
            && self.duplication == 0.0
            && self.reorder == 0.0
            && self.irq_delay == 0.0
            && self.irq_coalesce == 0.0
            && self.option_strip == 0.0
            && self.stragglers.is_empty()
    }

    /// Does the plan perturb the transport (anything the TCP sender and
    /// receiver must recover from)?
    pub fn perturbs_transport(&self) -> bool {
        self.loss > 0.0 || self.duplication > 0.0 || self.reorder > 0.0
    }

    /// Does the plan perturb interrupt delivery?
    pub fn perturbs_interrupts(&self) -> bool {
        self.irq_delay > 0.0 || self.irq_coalesce > 0.0
    }

    /// Whether the option-stripping middlebox sits on `flow`'s path.
    ///
    /// A pure hash of `(seed, flow)` against [`FaultPlan::option_strip`]:
    /// deterministic, independent of event order, and stable for the whole
    /// run — a middlebox does not come and go per packet.
    pub fn strips_flow(&self, flow: u64) -> bool {
        if self.option_strip <= 0.0 {
            return false;
        }
        if self.option_strip >= 1.0 {
            return true;
        }
        // SplitMix64 finalizer over (seed, flow) → uniform [0, 1).
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(flow.wrapping_mul(0xA24B_AED4_963E_E407));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        u < self.option_strip
    }

    /// Whether the middlebox strips `flow` at simulation time `now`:
    /// [`FaultPlan::strips_flow`] gated by the decommission time
    /// [`FaultPlan::option_strip_until`]. With the default `None` this is
    /// exactly `strips_flow` — same hash, same draws, same figures.
    pub fn strips_flow_at(&self, flow: u64, now: SimTime) -> bool {
        match self.option_strip_until {
            Some(until) if now.since(SimTime::ZERO) >= until => false,
            _ => self.strips_flow(flow),
        }
    }

    /// Validate probabilities and straggler entries against `servers`.
    pub fn validate(&self, servers: usize) -> Result<(), ConfigError> {
        for (what, p) in [
            ("faults.loss", self.loss),
            ("faults.corruption", self.corruption),
            ("faults.duplication", self.duplication),
            ("faults.reorder", self.reorder),
            ("faults.irq_delay", self.irq_delay),
            ("faults.irq_coalesce", self.irq_coalesce),
            ("faults.option_strip", self.option_strip),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(ConfigError::BadProbability(what, p));
            }
        }
        for &(idx, factor) in &self.stragglers {
            if idx >= servers {
                return Err(ConfigError::StragglerOutOfRange {
                    index: idx,
                    servers,
                });
            }
            if factor < 1.0 || factor.is_nan() {
                return Err(ConfigError::BadStragglerFactor { index: idx, factor });
            }
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// A configuration error, with enough context to fix it.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A structural count (clients, processes, servers) is zero.
    ZeroCount(&'static str),
    /// `transfer_size` is zero or exceeds `file_size`.
    BadTransferSize {
        /// Configured transfer size.
        transfer: u64,
        /// Configured file size.
        file: u64,
    },
    /// Strip size is zero.
    ZeroStripSize,
    /// MTU cannot hold the protocol headers.
    MtuTooSmall(u64),
    /// A probability is outside `[0, 1]`.
    BadProbability(&'static str, f64),
    /// The straggler index exceeds the server count.
    StragglerOutOfRange {
        /// Configured straggler server index.
        index: usize,
        /// Configured server count.
        servers: usize,
    },
    /// A straggler's service-time multiplier is below 1 (or NaN) — a
    /// straggler can only be slower than nominal.
    BadStragglerFactor {
        /// Configured straggler server index.
        index: usize,
        /// Configured multiplier.
        factor: f64,
    },
    /// The IRQ affinity mask permits no core of the machine.
    EmptyAffinityMask,
    /// More processes are pinned than there are cores to consume on —
    /// legal for the OS, but the hint space only names 32 cores.
    TooManyCoresForHint(usize),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroCount(what) => write!(f, "{what} must be at least 1"),
            ConfigError::BadTransferSize { transfer, file } => write!(
                f,
                "transfer_size ({transfer}) must be nonzero and at most file_size ({file})"
            ),
            ConfigError::ZeroStripSize => write!(f, "strip_size must be nonzero"),
            ConfigError::MtuTooSmall(mtu) => {
                write!(f, "mtu ({mtu}) cannot hold IP+TCP headers")
            }
            ConfigError::BadProbability(what, v) => {
                write!(f, "{what} ({v}) must be within [0, 1]")
            }
            ConfigError::StragglerOutOfRange { index, servers } => {
                write!(f, "straggler index {index} exceeds server count {servers}")
            }
            ConfigError::BadStragglerFactor { index, factor } => write!(
                f,
                "straggler {index} multiplier ({factor}) must be at least 1"
            ),
            ConfigError::EmptyAffinityMask => {
                write!(f, "irq_affinity_mask permits no core of this machine")
            }
            ConfigError::TooManyCoresForHint(cores) => write!(
                f,
                "{cores} cores exceed the 5-bit aff_core_id space (max 32)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full description of one simulated experiment.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Steering policy under test.
    pub policy: PolicyChoice,
    /// Read or write benchmark.
    pub direction: IoDirection,
    /// Number of client nodes (Fig. 12 scales this; everything else uses 1).
    pub clients: usize,
    /// IOR processes per client (the paper runs one per core for bandwidth
    /// tests).
    pub procs_per_client: usize,
    /// Number of PVFS I/O servers.
    pub servers: usize,
    /// Strip size in bytes (testbed: 64 KB).
    pub strip_size: u64,
    /// IOR transfer size in bytes (one blocking read).
    pub transfer_size: u64,
    /// Bytes each client reads in total (split evenly over its processes).
    /// The paper reads 10 GB; figure harnesses scale this down and note the
    /// factor in EXPERIMENTS.md — steady-state bandwidth is size-invariant.
    pub file_size: u64,
    /// Bonded NIC ports on each client.
    pub nic_ports: usize,
    /// Per-port rate in bits/second.
    pub nic_port_bps: f64,
    /// Ethernet MTU.
    pub mtu: u64,
    /// NIC interrupt coalescing: frames per hardirq.
    pub coalesce_frames: u64,
    /// Application compute per byte delivered (the IOR "encryption" task),
    /// in CPU cycles.
    pub compute_cycles_per_byte: f64,
    /// Cache-resident accesses accompanying each payload line touched
    /// (instruction/metadata traffic); see
    /// [`sais_mem::MemorySystem::note_background`].
    pub background_accesses_per_line: u64,
    /// One-way client→server request latency.
    pub request_net_delay: SimDuration,
    /// Fixed cost of issuing one read (syscall + request build).
    pub issue_cost: SimDuration,
    /// Whether IOR processes are pinned to their core (SAIs bundles them;
    /// kept on for baselines too so the comparison isolates interrupt
    /// placement).
    pub pin_processes: bool,
    /// RNG seed.
    pub seed: u64,
    /// Memory-hierarchy parameters.
    pub mem: MemParams,
    /// CPU parameters.
    pub cpu: CpuParams,
    /// I/O-server parameters.
    pub server: ServerParams,
    /// TCP retransmission timeout (the NewReno sender's RTO) used when
    /// [`FaultPlan::loss`] forces recovery.
    pub retransmit_timeout: SimDuration,
    /// Deterministic fault-injection plan ([`FaultPlan::none`] by default).
    pub faults: FaultPlan,
    /// Capacity of the per-client event-trace ring (0 disables tracing).
    /// Tracing is for debugging and causality tests; metrics never depend
    /// on it.
    pub trace_capacity: usize,
    /// Optional IRQ affinity mask applied to every NIC IRQ line (what
    /// `/proc/irq/N/smp_affinity` writes do). Bit *i* permits core *i*.
    /// A policy choice outside the mask is clamped by the I/O APIC — so a
    /// mask that excludes the consuming core silently defeats SAIs, which
    /// the `irq_affinity_mask_defeats_sais` test demonstrates.
    pub irq_affinity_mask: Option<u64>,
    /// Flight-recorder and stage-histogram switches (all off by default).
    pub obs: ObsConfig,
}

impl ScenarioConfig {
    /// The testbed with a single 1-GbE client NIC (§V.C's 1-Gigabit runs).
    pub fn testbed_1gig(servers: usize, transfer_size: u64) -> Self {
        let cpu = CpuParams::sunfire_head_node();
        ScenarioConfig {
            policy: PolicyChoice::LowestLoaded,
            direction: IoDirection::Read,
            clients: 1,
            // §V: "the client side executes an IOR process to read a 10GB
            // size file" — the single-client figures run one process.
            procs_per_client: 1,
            servers,
            strip_size: 64 * 1024,
            transfer_size,
            file_size: 256 * 1024 * 1024,
            nic_ports: 1,
            nic_port_bps: 1e9,
            mtu: 1500,
            coalesce_frames: 8,
            compute_cycles_per_byte: 2.0,
            background_accesses_per_line: 8,
            request_net_delay: SimDuration::from_micros(250),
            issue_cost: SimDuration::from_micros(15),
            pin_processes: true,
            seed: 0x5A15,
            mem: MemParams::sunfire_x4240(),
            cpu,
            server: ServerParams::default(),
            retransmit_timeout: SimDuration::from_millis(5),
            faults: FaultPlan::none(),
            trace_capacity: 0,
            irq_affinity_mask: None,
            obs: ObsConfig::default(),
        }
    }

    /// The testbed with the bonded 3×1-GbE client NIC (Fig. 5's runs).
    pub fn testbed_3gig(servers: usize, transfer_size: u64) -> Self {
        ScenarioConfig {
            nic_ports: 3,
            ..ScenarioConfig::testbed_1gig(servers, transfer_size)
        }
    }

    /// Set the policy, builder-style.
    pub fn with_policy(mut self, policy: PolicyChoice) -> Self {
        self.policy = policy;
        self
    }

    /// Set the I/O direction, builder-style.
    pub fn with_direction(mut self, direction: IoDirection) -> Self {
        self.direction = direction;
        self
    }

    /// Set the observability switches, builder-style.
    pub fn with_observability(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Set the fault plan, builder-style.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Bytes each process reads.
    pub fn bytes_per_proc(&self) -> u64 {
        self.file_size / self.procs_per_client as u64
    }

    /// Total payload bytes the whole scenario delivers.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_proc() * self.procs_per_client as u64 * self.clients as u64
    }

    /// Check the configuration for inconsistencies without running it.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (what, n) in [
            ("clients", self.clients),
            ("procs_per_client", self.procs_per_client),
            ("servers", self.servers),
            ("nic_ports", self.nic_ports),
        ] {
            if n == 0 {
                return Err(ConfigError::ZeroCount(what));
            }
        }
        if self.cpu.cores == 0 {
            return Err(ConfigError::ZeroCount("cpu.cores"));
        }
        if self.coalesce_frames == 0 {
            return Err(ConfigError::ZeroCount("coalesce_frames"));
        }
        if self.transfer_size == 0 || self.transfer_size > self.file_size {
            return Err(ConfigError::BadTransferSize {
                transfer: self.transfer_size,
                file: self.file_size,
            });
        }
        if self.strip_size == 0 {
            return Err(ConfigError::ZeroStripSize);
        }
        if self.mtu <= sais_net::IPV4_BASE_HEADER + sais_net::TCP_HEADER + 4 {
            return Err(ConfigError::MtuTooSmall(self.mtu));
        }
        let p = self.cpu.block_migration_prob;
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(ConfigError::BadProbability("cpu.block_migration_prob", p));
        }
        self.faults.validate(self.servers)?;
        if let Some(mask) = self.irq_affinity_mask {
            let machine = if self.cpu.cores >= 64 {
                u64::MAX
            } else {
                (1u64 << self.cpu.cores) - 1
            };
            if mask & machine == 0 {
                return Err(ConfigError::EmptyAffinityMask);
            }
        }
        if self.cpu.cores > 32 {
            return Err(ConfigError::TooManyCoresForHint(self.cpu.cores));
        }
        Ok(())
    }

    /// Execute the scenario to completion and collect metrics.
    ///
    /// # Panics
    /// On an invalid configuration; call [`ScenarioConfig::validate`] first
    /// to get a typed error instead.
    pub fn run(self) -> RunMetrics {
        self.run_full().0
    }

    /// Execute and additionally return the finished [`Cluster`], for
    /// inspection of traces and component statistics.
    pub fn run_full(self) -> (RunMetrics, Cluster) {
        if let Err(e) = self.validate() {
            panic!("invalid scenario: {e}");
        }
        let max_events = self.event_budget();
        let capacity = self.event_capacity();
        let mut engine = Engine::with_capacity(Cluster::new(self), capacity);
        engine.prime(SimTime::ZERO, crate::cluster::Ev::Start);
        engine.run_to_quiescence(max_events);
        let now = engine.now();
        let dispatched = engine.dispatched();
        let queue_high_water = engine.queue_high_water() as u64;
        let queue_cascades = engine.queue_cascades();
        let queue_peak_buckets = engine.queue_peak_buckets() as u64;
        let dispatch_batches = engine.dispatch_batches();
        let dispatch_max_batch = engine.max_batch();
        let dispatch_batch_hist = engine.batch_size_hist().to_vec();
        let mut cluster = engine.into_model();
        cluster.finish_telemetry();
        let mut metrics = cluster.collect_metrics(now);
        metrics.events_dispatched = dispatched;
        metrics.queue_high_water = queue_high_water;
        metrics.queue_cascades = queue_cascades;
        metrics.queue_peak_buckets = queue_peak_buckets;
        metrics.dispatch_batches = dispatch_batches;
        metrics.dispatch_max_batch = dispatch_max_batch;
        metrics.dispatch_batch_hist = dispatch_batch_hist;
        (metrics, cluster)
    }

    /// A generous runaway-loop backstop for the engine.
    fn event_budget(&self) -> u64 {
        let strips = self.total_bytes() / self.strip_size.min(self.transfer_size) + 16;
        let batches_per_strip = 64; // upper bound incl. retransmits
        strips.saturating_mul(batches_per_strip).saturating_mul(4) + 1_000_000
    }

    /// Upper estimate of *concurrently pending* events, used to pre-size the
    /// event queue: per client, every server can have one strip in flight
    /// with all of its coalesced interrupt batches scheduled, plus one
    /// bookkeeping event per process.
    fn event_capacity(&self) -> usize {
        let mss = self.mtu.saturating_sub(40).max(1); // IP + TCP headers
        let batches_per_strip = self.strip_size.div_ceil(mss * self.coalesce_frames.max(1)) + 2;
        let per_client = self.servers as u64 * batches_per_strip + self.procs_per_client as u64;
        (self.clients as u64 * per_client + 64).min(1 << 22) as usize
    }
}

/// Everything measured in one run — the union of the quantities the
/// paper's figures report.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Which policy ran.
    pub policy: PolicyKind,
    /// Wall-clock (simulated) time from start to the last request
    /// completion.
    pub wall_time: SimTime,
    /// Payload bytes delivered to applications.
    pub bytes_delivered: u64,
    /// Application read requests completed.
    pub requests_completed: u64,
    /// Strips delivered.
    pub strips_delivered: u64,
    /// Strips whose consumption required cache-to-cache migration.
    pub strip_migrations: u64,
    /// Total cache lines moved between cores.
    pub c2c_lines: u64,
    /// Aggregate L2 miss rate (misses / accesses, all cores, all clients).
    pub l2_miss_rate: f64,
    /// Total L2 accesses.
    pub l2_accesses: u64,
    /// Total L2 misses.
    pub l2_misses: u64,
    /// Mean CPU utilization across cores and clients (the `sar` number).
    pub cpu_utilization: f64,
    /// Total `CPU_CLK_UNHALTED` cycles.
    pub unhalted_cycles: u64,
    /// Hardirqs delivered.
    pub interrupts: u64,
    /// Hardirqs per client-core (first client), for distribution checks.
    pub irq_distribution: Vec<u64>,
    /// TCP segment retransmissions (loss injection; fast retransmit + RTO).
    pub retransmits: u64,
    /// TCP retransmission timeouts the NewReno sender suffered (loss
    /// injection; the slow path of `retransmits`).
    pub tcp_timeouts: u64,
    /// Headers SrcParser failed to parse (corruption injection).
    pub parse_errors: u64,
    /// Frames the NIC dropped for a bad Ethernet FCS (corruption injection;
    /// these never reach SrcParser).
    pub fcs_drops: u64,
    /// Duplicate TCP segments the receiver discarded (duplication
    /// injection).
    pub tcp_duplicates: u64,
    /// Hardirq batches delivered late (delay injection; a late batch can
    /// be overtaken by its successors).
    pub delayed_irqs: u64,
    /// Hardirq batches merged into their successor beyond the NIC's
    /// configured coalescing (coalesce injection).
    pub coalesced_merges: u64,
    /// Batches whose SAIs IP option a middlebox stripped before arrival.
    pub stripped_options: u64,
    /// Flows the SAIs policy degraded to RSS-style steering because their
    /// hints stopped arriving (option stripping), measured at run end.
    pub degraded_flows: u64,
    /// Degradation episodes the SAIs policy started (hint-less streak
    /// reached the threshold), cumulative over the run.
    pub steering_degrades: u64,
    /// Degradation episodes ended by a re-promoting hint, cumulative.
    /// The invariant `steering_degrades - steering_repromotes ==
    /// degraded_flows` holds at run end.
    pub steering_repromotes: u64,
    /// Interrupts steered by a source hint.
    pub hinted_interrupts: u64,
    /// Interrupts whose policy choice was clamped by the IRQ affinity mask.
    pub clamped_interrupts: u64,
    /// Per-client achieved bandwidth, bytes/second.
    pub per_client_bw: Vec<f64>,
    /// Process wake-time migrations observed (unpinned ablation).
    pub process_migrations: u64,
    /// Per-request completion latency (issue → data ready), nanoseconds.
    pub request_latency: sais_metrics::Histogram,
    /// Per-stage latency histograms (disabled unless
    /// [`ObsConfig::stages`] was on for the run).
    pub stages: sais_obs::StageHistograms,
    /// Discrete events the engine dispatched for this run (host-performance
    /// accounting; does not affect any simulated quantity).
    pub events_dispatched: u64,
    /// Peak simultaneously-pending events in the engine's queue — sizes
    /// `Engine::with_capacity` for re-runs of the same scenario (also
    /// host-side accounting; filled in by `ScenarioConfig::run_full`).
    pub queue_high_water: u64,
    /// Events that took the timing wheel's far-future overflow path and
    /// cascaded back into the near-future ring (host-side accounting;
    /// filled in by `ScenarioConfig::run_full`).
    pub queue_cascades: u64,
    /// Peak simultaneously-occupied timing-wheel buckets (host-side
    /// accounting; filled in by `ScenarioConfig::run_full`).
    pub queue_peak_buckets: u64,
    /// Peak simultaneous occupancy of the strip slab — the true in-flight
    /// strip high-water mark (host-side accounting; the slab's dense
    /// storage is sized by it).
    pub strip_slab_high_water: u64,
    /// Peak simultaneous occupancy of the read slab.
    pub read_slab_high_water: u64,
    /// Same-timestamp batches the engine dispatched (host-side
    /// accounting; filled in by `ScenarioConfig::run_full`).
    pub dispatch_batches: u64,
    /// Largest same-timestamp batch dispatched (host-side accounting;
    /// filled in by `ScenarioConfig::run_full`).
    pub dispatch_max_batch: u64,
    /// Power-of-two histogram of dispatched batch sizes: bucket `i`
    /// counts batches of `2^i ..= 2^(i+1) - 1` events, the last bucket
    /// absorbing larger runs (host-side accounting; filled in by
    /// `ScenarioConfig::run_full`).
    pub dispatch_batch_hist: Vec<u64>,
    /// Windowed time-series telemetry (disabled/empty unless
    /// [`ObsConfig::timeseries`] was on for the run).
    pub telemetry: crate::telemetry::TelemetrySeries,
    /// Telemetry windows opened by the advancing virtual clock, including
    /// gap-filled empty windows (0 when telemetry is off).
    pub window_rotations: u64,
    /// Windows folded through the streaming detectors (0 when telemetry
    /// is off).
    pub detector_evals: u64,
    /// Verdicts the streaming detectors reached during the run.
    pub telemetry_verdicts: Vec<sais_obs::TelemetryVerdict>,
}

impl RunMetrics {
    /// Aggregate delivered bandwidth in bytes/second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        if self.wall_time == SimTime::ZERO {
            return 0.0;
        }
        self.bytes_delivered as f64 / self.wall_time.as_secs_f64()
    }

    /// Aggregate bandwidth in the paper's MB/s (decimal).
    pub fn bandwidth_mbs(&self) -> f64 {
        self.bandwidth_bytes_per_sec() / 1e6
    }

    /// Median request latency in milliseconds.
    pub fn latency_p50_ms(&self) -> f64 {
        self.request_latency.quantile(0.5) as f64 / 1e6
    }

    /// 99th-percentile request latency in milliseconds.
    pub fn latency_p99_ms(&self) -> f64 {
        self.request_latency.quantile(0.99) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_arithmetic() {
        let mut cfg = ScenarioConfig::testbed_3gig(8, 1024 * 1024);
        cfg.file_size = 64 * 1024 * 1024;
        assert_eq!(cfg.procs_per_client, 1);
        assert_eq!(cfg.bytes_per_proc(), 64 * 1024 * 1024);
        assert_eq!(cfg.total_bytes(), 64 * 1024 * 1024);
        assert_eq!(cfg.nic_ports, 3);
        assert_eq!(ScenarioConfig::testbed_1gig(8, 1024).nic_ports, 1);
    }

    #[test]
    fn validation_catches_each_error_class() {
        let ok = ScenarioConfig::testbed_3gig(8, 1024 * 1024);
        assert_eq!(ok.validate(), Ok(()));

        let mut c = ok.clone();
        c.servers = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCount("servers")));

        let mut c = ok.clone();
        c.transfer_size = c.file_size + 1;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadTransferSize { .. })
        ));

        let mut c = ok.clone();
        c.strip_size = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroStripSize));

        let mut c = ok.clone();
        c.mtu = 40;
        assert_eq!(c.validate(), Err(ConfigError::MtuTooSmall(40)));

        let mut c = ok.clone();
        c.faults.loss = 1.5;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadProbability("faults.loss", _))
        ));

        let mut c = ok.clone();
        c.faults.option_strip = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadProbability("faults.option_strip", _))
        ));

        let mut c = ok.clone();
        c.faults.stragglers = vec![(8, 2.0)];
        assert!(matches!(
            c.validate(),
            Err(ConfigError::StragglerOutOfRange { .. })
        ));

        let mut c = ok.clone();
        c.faults.stragglers = vec![(2, 0.5)];
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadStragglerFactor { index: 2, .. })
        ));

        let mut c = ok.clone();
        c.irq_affinity_mask = Some(0);
        assert_eq!(c.validate(), Err(ConfigError::EmptyAffinityMask));

        let mut c = ok.clone();
        c.cpu.cores = 33;
        assert_eq!(c.validate(), Err(ConfigError::TooManyCoresForHint(33)));

        // Errors render as readable text.
        let msg = format!("{}", ConfigError::MtuTooSmall(40));
        assert!(msg.contains("mtu"));
    }

    #[test]
    fn fault_plan_none_is_default_and_empty() {
        assert_eq!(FaultPlan::default(), FaultPlan::none());
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::none().perturbs_transport());
        assert!(!FaultPlan::none().perturbs_interrupts());
        let mut p = FaultPlan::none();
        p.option_strip = 0.5;
        assert!(!p.is_none());
        let mut p = FaultPlan::none();
        p.loss = 0.01;
        assert!(p.perturbs_transport() && !p.perturbs_interrupts());
        let mut p = FaultPlan::none();
        p.irq_coalesce = 0.2;
        assert!(p.perturbs_interrupts() && !p.perturbs_transport());
    }

    #[test]
    fn strips_flow_is_deterministic_and_proportional() {
        let mut p = FaultPlan::none();
        p.option_strip = 0.5;
        // Stateless: the same flow always gets the same verdict.
        for flow in 0..64u64 {
            assert_eq!(p.strips_flow(flow), p.strips_flow(flow));
        }
        // Roughly the requested fraction of a large flow population.
        let hit = (0..10_000u64).filter(|&f| p.strips_flow(f)).count();
        assert!((4_000..6_000).contains(&hit), "hit {hit} of 10000");
        // Edges are exact.
        p.option_strip = 0.0;
        assert!((0..100).all(|f| !p.strips_flow(f)));
        p.option_strip = 1.0;
        assert!((0..100).all(|f| p.strips_flow(f)));
        // A different fault seed selects a different flow subset.
        let mut q = FaultPlan::none();
        q.option_strip = 0.5;
        q.seed ^= 0xDEAD_BEEF;
        assert!((0..10_000u64).any(|f| p.strips_flow(f) != q.strips_flow(f)));
    }

    #[test]
    #[should_panic(expected = "invalid scenario")]
    fn run_panics_on_invalid_config() {
        let mut c = ScenarioConfig::testbed_3gig(8, 1024 * 1024);
        c.servers = 0;
        let _ = c.run();
    }

    #[test]
    fn policy_choices_build() {
        for c in [
            PolicyChoice::RoundRobin,
            PolicyChoice::Dedicated,
            PolicyChoice::LowestLoaded,
            PolicyChoice::IrqbalanceDaemon,
            PolicyChoice::FlowHash,
            PolicyChoice::SourceAware,
            PolicyChoice::Hybrid,
        ] {
            let p = c.build();
            assert_eq!(p.kind(), c.kind());
            assert!(!c.label().is_empty());
        }
    }
}
