//! Experiment configuration and run-level metrics.
//!
//! A [`ScenarioConfig`] describes one cell of a paper figure (policy ×
//! transfer size × server count × NIC), and `run()` executes it on the
//! cluster model, returning the [`RunMetrics`] from which every figure's
//! rows are derived.

use crate::cluster::Cluster;
use sais_apic::{Policy, PolicyKind};
use sais_cpu::CpuParams;
use sais_mem::MemParams;
use sais_pvfs::ServerParams;
use sais_sim::{Engine, SimDuration, SimTime};

/// Which steering policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Strict rotation over cores (Linux/Intel default mode).
    RoundRobin,
    /// Everything on one core (Linux/AMD lowest-priority default).
    Dedicated,
    /// irqbalance: lightest core per interrupt. The paper's baseline.
    LowestLoaded,
    /// The irqbalance daemon at its real granularity: the IRQ line re-homes
    /// to the lightest core once per interval (default 10 s scaled to the
    /// simulated run lengths: 100 ms here).
    IrqbalanceDaemon,
    /// RSS-style static flow hashing.
    FlowHash,
    /// SAIs.
    SourceAware,
    /// Future-work hybrid: hint unless the hinted core is overloaded.
    Hybrid,
}

impl PolicyChoice {
    /// Instantiate the policy state.
    pub fn build(self) -> Policy {
        match self {
            PolicyChoice::RoundRobin => Policy::round_robin(),
            PolicyChoice::Dedicated => Policy::Dedicated { core: 0 },
            PolicyChoice::LowestLoaded => Policy::LowestLoaded,
            PolicyChoice::IrqbalanceDaemon => {
                Policy::balanced_daemon(SimDuration::from_millis(100))
            }
            PolicyChoice::FlowHash => Policy::FlowHash,
            PolicyChoice::SourceAware => Policy::sais(),
            PolicyChoice::Hybrid => Policy::hybrid(SimDuration::from_micros(200)),
        }
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        self.kind().label()
    }

    /// Corresponding kind.
    pub fn kind(self) -> PolicyKind {
        match self {
            PolicyChoice::RoundRobin => PolicyKind::RoundRobin,
            PolicyChoice::Dedicated => PolicyKind::Dedicated,
            PolicyChoice::LowestLoaded => PolicyKind::LowestLoaded,
            PolicyChoice::IrqbalanceDaemon => PolicyKind::BalancedDaemon,
            PolicyChoice::FlowHash => PolicyKind::FlowHash,
            PolicyChoice::SourceAware => PolicyKind::SourceAware,
            PolicyChoice::Hybrid => PolicyKind::Hybrid,
        }
    }
}

/// Direction of the benchmark I/O.
///
/// The paper scopes itself to reads: "Because there is not a data locality
/// issue associated with interrupt scheduling in parallel I/O write
/// operations, our study focuses on parallel I/O read." The write path is
/// implemented so that claim can be *demonstrated* (`abl_write_path`): on
/// writes the client only receives tiny acknowledgements, so interrupt
/// placement has nothing to win.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDirection {
    /// IOR read (the paper's experiments).
    Read,
    /// IOR write.
    Write,
}

/// Observability switches for one run.
///
/// Everything defaults to **off**, and the disabled state is zero-cost by
/// contract: every record call in the hot path starts with a branch on a
/// single flag and touches nothing else (see `sais-obs`). Enabling spans
/// or stage histograms never changes simulated results — the recorder only
/// reads times the model already computed.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Record request/strip/interrupt/copy spans into a
    /// [`sais_obs::FlightRecorder`] for Perfetto export.
    pub spans: bool,
    /// Record per-stage latency histograms
    /// ([`sais_obs::StageHistograms`]).
    pub stages: bool,
    /// Maximum spans retained when `spans` is on; beginnings past the cap
    /// are counted as dropped.
    pub span_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            spans: false,
            stages: false,
            span_capacity: 1 << 16,
        }
    }
}

impl ObsConfig {
    /// Everything on, with the default span capacity.
    pub fn full() -> Self {
        ObsConfig {
            spans: true,
            stages: true,
            ..ObsConfig::default()
        }
    }
}

/// A configuration error, with enough context to fix it.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A structural count (clients, processes, servers) is zero.
    ZeroCount(&'static str),
    /// `transfer_size` is zero or exceeds `file_size`.
    BadTransferSize {
        /// Configured transfer size.
        transfer: u64,
        /// Configured file size.
        file: u64,
    },
    /// Strip size is zero.
    ZeroStripSize,
    /// MTU cannot hold the protocol headers.
    MtuTooSmall(u64),
    /// A probability is outside `[0, 1]`.
    BadProbability(&'static str, f64),
    /// The straggler index exceeds the server count.
    StragglerOutOfRange {
        /// Configured straggler server index.
        index: usize,
        /// Configured server count.
        servers: usize,
    },
    /// The IRQ affinity mask permits no core of the machine.
    EmptyAffinityMask,
    /// More processes are pinned than there are cores to consume on —
    /// legal for the OS, but the hint space only names 32 cores.
    TooManyCoresForHint(usize),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroCount(what) => write!(f, "{what} must be at least 1"),
            ConfigError::BadTransferSize { transfer, file } => write!(
                f,
                "transfer_size ({transfer}) must be nonzero and at most file_size ({file})"
            ),
            ConfigError::ZeroStripSize => write!(f, "strip_size must be nonzero"),
            ConfigError::MtuTooSmall(mtu) => {
                write!(f, "mtu ({mtu}) cannot hold IP+TCP headers")
            }
            ConfigError::BadProbability(what, v) => {
                write!(f, "{what} ({v}) must be within [0, 1]")
            }
            ConfigError::StragglerOutOfRange { index, servers } => {
                write!(f, "straggler index {index} exceeds server count {servers}")
            }
            ConfigError::EmptyAffinityMask => {
                write!(f, "irq_affinity_mask permits no core of this machine")
            }
            ConfigError::TooManyCoresForHint(cores) => write!(
                f,
                "{cores} cores exceed the 5-bit aff_core_id space (max 32)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full description of one simulated experiment.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Steering policy under test.
    pub policy: PolicyChoice,
    /// Read or write benchmark.
    pub direction: IoDirection,
    /// Number of client nodes (Fig. 12 scales this; everything else uses 1).
    pub clients: usize,
    /// IOR processes per client (the paper runs one per core for bandwidth
    /// tests).
    pub procs_per_client: usize,
    /// Number of PVFS I/O servers.
    pub servers: usize,
    /// Strip size in bytes (testbed: 64 KB).
    pub strip_size: u64,
    /// IOR transfer size in bytes (one blocking read).
    pub transfer_size: u64,
    /// Bytes each client reads in total (split evenly over its processes).
    /// The paper reads 10 GB; figure harnesses scale this down and note the
    /// factor in EXPERIMENTS.md — steady-state bandwidth is size-invariant.
    pub file_size: u64,
    /// Bonded NIC ports on each client.
    pub nic_ports: usize,
    /// Per-port rate in bits/second.
    pub nic_port_bps: f64,
    /// Ethernet MTU.
    pub mtu: u64,
    /// NIC interrupt coalescing: frames per hardirq.
    pub coalesce_frames: u64,
    /// Application compute per byte delivered (the IOR "encryption" task),
    /// in CPU cycles.
    pub compute_cycles_per_byte: f64,
    /// Cache-resident accesses accompanying each payload line touched
    /// (instruction/metadata traffic); see
    /// [`sais_mem::MemorySystem::note_background`].
    pub background_accesses_per_line: u64,
    /// One-way client→server request latency.
    pub request_net_delay: SimDuration,
    /// Fixed cost of issuing one read (syscall + request build).
    pub issue_cost: SimDuration,
    /// Whether IOR processes are pinned to their core (SAIs bundles them;
    /// kept on for baselines too so the comparison isolates interrupt
    /// placement).
    pub pin_processes: bool,
    /// RNG seed.
    pub seed: u64,
    /// Memory-hierarchy parameters.
    pub mem: MemParams,
    /// CPU parameters.
    pub cpu: CpuParams,
    /// I/O-server parameters.
    pub server: ServerParams,
    /// Probability a strip's response is lost and must be retransmitted.
    pub strip_loss_prob: f64,
    /// Retransmission timeout for lost strips.
    pub retransmit_timeout: SimDuration,
    /// Probability an incoming header is corrupted before SrcParser sees it.
    pub hint_corruption_prob: f64,
    /// Optional straggler: `(server index, service-time multiplier)`.
    pub straggler: Option<(usize, f64)>,
    /// Capacity of the per-client event-trace ring (0 disables tracing).
    /// Tracing is for debugging and causality tests; metrics never depend
    /// on it.
    pub trace_capacity: usize,
    /// Optional IRQ affinity mask applied to every NIC IRQ line (what
    /// `/proc/irq/N/smp_affinity` writes do). Bit *i* permits core *i*.
    /// A policy choice outside the mask is clamped by the I/O APIC — so a
    /// mask that excludes the consuming core silently defeats SAIs, which
    /// the `irq_affinity_mask_defeats_sais` test demonstrates.
    pub irq_affinity_mask: Option<u64>,
    /// Flight-recorder and stage-histogram switches (all off by default).
    pub obs: ObsConfig,
}

impl ScenarioConfig {
    /// The testbed with a single 1-GbE client NIC (§V.C's 1-Gigabit runs).
    pub fn testbed_1gig(servers: usize, transfer_size: u64) -> Self {
        let cpu = CpuParams::sunfire_head_node();
        ScenarioConfig {
            policy: PolicyChoice::LowestLoaded,
            direction: IoDirection::Read,
            clients: 1,
            // §V: "the client side executes an IOR process to read a 10GB
            // size file" — the single-client figures run one process.
            procs_per_client: 1,
            servers,
            strip_size: 64 * 1024,
            transfer_size,
            file_size: 256 * 1024 * 1024,
            nic_ports: 1,
            nic_port_bps: 1e9,
            mtu: 1500,
            coalesce_frames: 8,
            compute_cycles_per_byte: 2.0,
            background_accesses_per_line: 8,
            request_net_delay: SimDuration::from_micros(250),
            issue_cost: SimDuration::from_micros(15),
            pin_processes: true,
            seed: 0x5A15,
            mem: MemParams::sunfire_x4240(),
            cpu,
            server: ServerParams::default(),
            strip_loss_prob: 0.0,
            retransmit_timeout: SimDuration::from_millis(5),
            hint_corruption_prob: 0.0,
            straggler: None,
            trace_capacity: 0,
            irq_affinity_mask: None,
            obs: ObsConfig::default(),
        }
    }

    /// The testbed with the bonded 3×1-GbE client NIC (Fig. 5's runs).
    pub fn testbed_3gig(servers: usize, transfer_size: u64) -> Self {
        ScenarioConfig {
            nic_ports: 3,
            ..ScenarioConfig::testbed_1gig(servers, transfer_size)
        }
    }

    /// Set the policy, builder-style.
    pub fn with_policy(mut self, policy: PolicyChoice) -> Self {
        self.policy = policy;
        self
    }

    /// Set the I/O direction, builder-style.
    pub fn with_direction(mut self, direction: IoDirection) -> Self {
        self.direction = direction;
        self
    }

    /// Set the observability switches, builder-style.
    pub fn with_observability(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Bytes each process reads.
    pub fn bytes_per_proc(&self) -> u64 {
        self.file_size / self.procs_per_client as u64
    }

    /// Total payload bytes the whole scenario delivers.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_proc() * self.procs_per_client as u64 * self.clients as u64
    }

    /// Check the configuration for inconsistencies without running it.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (what, n) in [
            ("clients", self.clients),
            ("procs_per_client", self.procs_per_client),
            ("servers", self.servers),
            ("nic_ports", self.nic_ports),
        ] {
            if n == 0 {
                return Err(ConfigError::ZeroCount(what));
            }
        }
        if self.cpu.cores == 0 {
            return Err(ConfigError::ZeroCount("cpu.cores"));
        }
        if self.coalesce_frames == 0 {
            return Err(ConfigError::ZeroCount("coalesce_frames"));
        }
        if self.transfer_size == 0 || self.transfer_size > self.file_size {
            return Err(ConfigError::BadTransferSize {
                transfer: self.transfer_size,
                file: self.file_size,
            });
        }
        if self.strip_size == 0 {
            return Err(ConfigError::ZeroStripSize);
        }
        if self.mtu <= sais_net::IPV4_BASE_HEADER + sais_net::TCP_HEADER + 4 {
            return Err(ConfigError::MtuTooSmall(self.mtu));
        }
        for (what, p) in [
            ("strip_loss_prob", self.strip_loss_prob),
            ("hint_corruption_prob", self.hint_corruption_prob),
            ("cpu.block_migration_prob", self.cpu.block_migration_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(ConfigError::BadProbability(what, p));
            }
        }
        if let Some((idx, _)) = self.straggler {
            if idx >= self.servers {
                return Err(ConfigError::StragglerOutOfRange {
                    index: idx,
                    servers: self.servers,
                });
            }
        }
        if let Some(mask) = self.irq_affinity_mask {
            let machine = if self.cpu.cores >= 64 {
                u64::MAX
            } else {
                (1u64 << self.cpu.cores) - 1
            };
            if mask & machine == 0 {
                return Err(ConfigError::EmptyAffinityMask);
            }
        }
        if self.cpu.cores > 32 {
            return Err(ConfigError::TooManyCoresForHint(self.cpu.cores));
        }
        Ok(())
    }

    /// Execute the scenario to completion and collect metrics.
    ///
    /// # Panics
    /// On an invalid configuration; call [`ScenarioConfig::validate`] first
    /// to get a typed error instead.
    pub fn run(self) -> RunMetrics {
        self.run_full().0
    }

    /// Execute and additionally return the finished [`Cluster`], for
    /// inspection of traces and component statistics.
    pub fn run_full(self) -> (RunMetrics, Cluster) {
        if let Err(e) = self.validate() {
            panic!("invalid scenario: {e}");
        }
        let max_events = self.event_budget();
        let capacity = self.event_capacity();
        let mut engine = Engine::with_capacity(Cluster::new(self), capacity);
        engine.prime(SimTime::ZERO, crate::cluster::Ev::Start);
        engine.run_to_quiescence(max_events);
        let now = engine.now();
        let dispatched = engine.dispatched();
        let queue_high_water = engine.queue_high_water() as u64;
        let cluster = engine.into_model();
        let mut metrics = cluster.collect_metrics(now);
        metrics.events_dispatched = dispatched;
        metrics.queue_high_water = queue_high_water;
        (metrics, cluster)
    }

    /// A generous runaway-loop backstop for the engine.
    fn event_budget(&self) -> u64 {
        let strips = self.total_bytes() / self.strip_size.min(self.transfer_size) + 16;
        let batches_per_strip = 64; // upper bound incl. retransmits
        strips.saturating_mul(batches_per_strip).saturating_mul(4) + 1_000_000
    }

    /// Upper estimate of *concurrently pending* events, used to pre-size the
    /// event queue: per client, every server can have one strip in flight
    /// with all of its coalesced interrupt batches scheduled, plus one
    /// bookkeeping event per process.
    fn event_capacity(&self) -> usize {
        let mss = self.mtu.saturating_sub(40).max(1); // IP + TCP headers
        let batches_per_strip = self.strip_size.div_ceil(mss * self.coalesce_frames.max(1)) + 2;
        let per_client = self.servers as u64 * batches_per_strip + self.procs_per_client as u64;
        (self.clients as u64 * per_client + 64).min(1 << 22) as usize
    }
}

/// Everything measured in one run — the union of the quantities the
/// paper's figures report.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Which policy ran.
    pub policy: PolicyKind,
    /// Wall-clock (simulated) time from start to the last request
    /// completion.
    pub wall_time: SimTime,
    /// Payload bytes delivered to applications.
    pub bytes_delivered: u64,
    /// Application read requests completed.
    pub requests_completed: u64,
    /// Strips delivered.
    pub strips_delivered: u64,
    /// Strips whose consumption required cache-to-cache migration.
    pub strip_migrations: u64,
    /// Total cache lines moved between cores.
    pub c2c_lines: u64,
    /// Aggregate L2 miss rate (misses / accesses, all cores, all clients).
    pub l2_miss_rate: f64,
    /// Total L2 accesses.
    pub l2_accesses: u64,
    /// Total L2 misses.
    pub l2_misses: u64,
    /// Mean CPU utilization across cores and clients (the `sar` number).
    pub cpu_utilization: f64,
    /// Total `CPU_CLK_UNHALTED` cycles.
    pub unhalted_cycles: u64,
    /// Hardirqs delivered.
    pub interrupts: u64,
    /// Hardirqs per client-core (first client), for distribution checks.
    pub irq_distribution: Vec<u64>,
    /// Strip retransmissions (loss injection).
    pub retransmits: u64,
    /// Headers SrcParser failed to parse (corruption injection).
    pub parse_errors: u64,
    /// Frames the NIC dropped for a bad Ethernet FCS (corruption injection;
    /// these never reach SrcParser).
    pub fcs_drops: u64,
    /// Interrupts steered by a source hint.
    pub hinted_interrupts: u64,
    /// Interrupts whose policy choice was clamped by the IRQ affinity mask.
    pub clamped_interrupts: u64,
    /// Per-client achieved bandwidth, bytes/second.
    pub per_client_bw: Vec<f64>,
    /// Process wake-time migrations observed (unpinned ablation).
    pub process_migrations: u64,
    /// Per-request completion latency (issue → data ready), nanoseconds.
    pub request_latency: sais_metrics::Histogram,
    /// Per-stage latency histograms (disabled unless
    /// [`ObsConfig::stages`] was on for the run).
    pub stages: sais_obs::StageHistograms,
    /// Discrete events the engine dispatched for this run (host-performance
    /// accounting; does not affect any simulated quantity).
    pub events_dispatched: u64,
    /// Peak simultaneously-pending events in the engine's queue — sizes
    /// `Engine::with_capacity` for re-runs of the same scenario (also
    /// host-side accounting; filled in by `ScenarioConfig::run_full`).
    pub queue_high_water: u64,
}

impl RunMetrics {
    /// Aggregate delivered bandwidth in bytes/second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        if self.wall_time == SimTime::ZERO {
            return 0.0;
        }
        self.bytes_delivered as f64 / self.wall_time.as_secs_f64()
    }

    /// Aggregate bandwidth in the paper's MB/s (decimal).
    pub fn bandwidth_mbs(&self) -> f64 {
        self.bandwidth_bytes_per_sec() / 1e6
    }

    /// Median request latency in milliseconds.
    pub fn latency_p50_ms(&self) -> f64 {
        self.request_latency.quantile(0.5) as f64 / 1e6
    }

    /// 99th-percentile request latency in milliseconds.
    pub fn latency_p99_ms(&self) -> f64 {
        self.request_latency.quantile(0.99) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_arithmetic() {
        let mut cfg = ScenarioConfig::testbed_3gig(8, 1024 * 1024);
        cfg.file_size = 64 * 1024 * 1024;
        assert_eq!(cfg.procs_per_client, 1);
        assert_eq!(cfg.bytes_per_proc(), 64 * 1024 * 1024);
        assert_eq!(cfg.total_bytes(), 64 * 1024 * 1024);
        assert_eq!(cfg.nic_ports, 3);
        assert_eq!(ScenarioConfig::testbed_1gig(8, 1024).nic_ports, 1);
    }

    #[test]
    fn validation_catches_each_error_class() {
        let ok = ScenarioConfig::testbed_3gig(8, 1024 * 1024);
        assert_eq!(ok.validate(), Ok(()));

        let mut c = ok.clone();
        c.servers = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCount("servers")));

        let mut c = ok.clone();
        c.transfer_size = c.file_size + 1;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadTransferSize { .. })
        ));

        let mut c = ok.clone();
        c.strip_size = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroStripSize));

        let mut c = ok.clone();
        c.mtu = 40;
        assert_eq!(c.validate(), Err(ConfigError::MtuTooSmall(40)));

        let mut c = ok.clone();
        c.strip_loss_prob = 1.5;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadProbability("strip_loss_prob", _))
        ));

        let mut c = ok.clone();
        c.straggler = Some((8, 2.0));
        assert!(matches!(
            c.validate(),
            Err(ConfigError::StragglerOutOfRange { .. })
        ));

        let mut c = ok.clone();
        c.irq_affinity_mask = Some(0);
        assert_eq!(c.validate(), Err(ConfigError::EmptyAffinityMask));

        let mut c = ok.clone();
        c.cpu.cores = 33;
        assert_eq!(c.validate(), Err(ConfigError::TooManyCoresForHint(33)));

        // Errors render as readable text.
        let msg = format!("{}", ConfigError::MtuTooSmall(40));
        assert!(msg.contains("mtu"));
    }

    #[test]
    #[should_panic(expected = "invalid scenario")]
    fn run_panics_on_invalid_config() {
        let mut c = ScenarioConfig::testbed_3gig(8, 1024 * 1024);
        c.servers = 0;
        let _ = c.run();
    }

    #[test]
    fn policy_choices_build() {
        for c in [
            PolicyChoice::RoundRobin,
            PolicyChoice::Dedicated,
            PolicyChoice::LowestLoaded,
            PolicyChoice::IrqbalanceDaemon,
            PolicyChoice::FlowHash,
            PolicyChoice::SourceAware,
            PolicyChoice::Hybrid,
        ] {
            let p = c.build();
            assert_eq!(p.kind(), c.kind());
            assert!(!c.label().is_empty());
        }
    }
}
