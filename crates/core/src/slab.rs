//! A generational slab for per-instance hot state.
//!
//! The cluster model keeps bookkeeping for every in-flight read and strip.
//! Keying that state by `u64` instance id through a hash map costs a hash
//! and a probe on **every** `StripAtNic`/`HardIrq`/`BatchReady`/
//! `StripCopied` event — the hottest lookups in the simulator. The slab
//! replaces the map with a dense `Vec`: event payloads carry a
//! [`SlabRef`] (slot index + generation), so resolving state is one
//! bounds-checked index and one generation compare — zero hashing, and
//! zero allocation once the slab has grown to the scenario's in-flight
//! high-water mark (freed slots are recycled through a free list).
//!
//! The generation guards against ABA: a slot freed by `remove` and
//! recycled by a later `insert` bumps its generation, so a stale
//! [`SlabRef`] held by a leftover event can never silently resolve to the
//! new occupant — `get` returns `None` and the indexing accessors panic.
//! Generations wrap; a collision would need exactly `2^32` recycles of
//! one slot between a ref's creation and its use, while the simulator
//! resolves every ref within the event horizon of one strip (microseconds
//! of simulated time, a handful of recycles). Property tests in
//! `tests/slab_oracle.rs` drive the slab against a `HashMap` oracle,
//! including forced generation wrap-around and reuse-after-free.

/// A dense, generation-checked handle into a [`Slab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlabRef {
    idx: u32,
    gen: u32,
}

impl SlabRef {
    /// The slot index (diagnostic; stable only while the ref is live).
    pub fn index(self) -> u32 {
        self.idx
    }

    /// The generation the ref was minted under.
    pub fn generation(self) -> u32 {
        self.gen
    }
}

struct Slot<T> {
    /// Bumped on every `remove`, so stale refs to a recycled slot fail
    /// the generation compare.
    gen: u32,
    value: Option<T>,
}

/// A generational slab: O(1) insert/get/remove, dense storage, recycled
/// slots, ABA-safe handles.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    /// Indices of vacant slots, reused LIFO (the hottest slot stays hot).
    free: Vec<u32>,
    len: usize,
    high_water: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty slab with room for `cap` occupants before regrowth.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
            high_water: 0,
        }
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Peak simultaneous occupancy over the slab's lifetime — the
    /// scenario's true in-flight state high-water mark, surfaced as a
    /// `RunMetrics` counter and a `with_capacity` hint for re-runs.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Store `value`, returning its handle.
    pub fn insert(&mut self, value: T) -> SlabRef {
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.value.is_none(), "free list held an occupied slot");
                slot.value = Some(value);
                SlabRef { idx, gen: slot.gen }
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("slab outgrew u32 index space");
                self.slots.push(Slot {
                    gen: 0,
                    value: Some(value),
                });
                SlabRef { idx, gen: 0 }
            }
        }
    }

    /// The value behind `r`, or `None` if `r` is stale (freed, or freed
    /// and recycled — the generation no longer matches).
    #[inline]
    pub fn get(&self, r: SlabRef) -> Option<&T> {
        let slot = self.slots.get(r.idx as usize)?;
        if slot.gen != r.gen {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable [`Slab::get`].
    #[inline]
    pub fn get_mut(&mut self, r: SlabRef) -> Option<&mut T> {
        let slot = self.slots.get_mut(r.idx as usize)?;
        if slot.gen != r.gen {
            return None;
        }
        slot.value.as_mut()
    }

    /// Remove and return the value behind `r`, bumping the slot's
    /// generation and recycling it.
    ///
    /// # Panics
    /// If `r` is stale — a double-remove is a model bug, never a
    /// recoverable condition.
    pub fn remove(&mut self, r: SlabRef) -> T {
        let slot = &mut self.slots[r.idx as usize];
        assert_eq!(slot.gen, r.gen, "stale SlabRef passed to remove");
        let value = slot.value.take().expect("stale SlabRef passed to remove");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.idx);
        self.len -= 1;
        value
    }

    /// Iterate the live `(ref, value)` pairs in slot order (diagnostics
    /// and tests; the hot path never scans).
    pub fn iter(&self) -> impl Iterator<Item = (SlabRef, &T)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| {
                (
                    SlabRef {
                        idx: i as u32,
                        gen: s.gen,
                    },
                    v,
                )
            })
        })
    }

    /// Force slot `idx`'s generation to `gen` (test hook for wrap-around
    /// coverage; the slot must exist and be vacant).
    #[doc(hidden)]
    pub fn set_generation_for_test(&mut self, idx: u32, gen: u32) {
        let slot = &mut self.slots[idx as usize];
        assert!(slot.value.is_none(), "generation surgery on a live slot");
        slot.gen = gen;
    }
}

impl<T> std::ops::Index<SlabRef> for Slab<T> {
    type Output = T;

    /// Panicking accessor for refs the model knows are live — the hot
    /// path's lookup: one bounds check, one generation compare, no hash.
    #[inline]
    fn index(&self, r: SlabRef) -> &T {
        let slot = &self.slots[r.idx as usize];
        assert_eq!(slot.gen, r.gen, "stale SlabRef");
        slot.value.as_ref().expect("stale SlabRef")
    }
}

impl<T> std::ops::IndexMut<SlabRef> for Slab<T> {
    #[inline]
    fn index_mut(&mut self, r: SlabRef) -> &mut T {
        let slot = &mut self.slots[r.idx as usize];
        assert_eq!(slot.gen, r.gen, "stale SlabRef");
        slot.value.as_mut().expect("stale SlabRef")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s[b], "b");
        assert_eq!(s.remove(a), "a");
        assert_eq!(s.get(a), None, "removed ref is stale");
        assert_eq!(s.len(), 1);
        assert_eq!(s.high_water(), 2);
    }

    #[test]
    fn recycled_slot_rejects_stale_ref() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a);
        let b = s.insert(2u32);
        // LIFO recycling: same slot, new generation.
        assert_eq!(b.index(), a.index());
        assert_ne!(b.generation(), a.generation());
        assert_eq!(s.get(a), None, "ABA: old ref must not see new value");
        assert_eq!(s[b], 2);
    }

    #[test]
    #[should_panic(expected = "stale SlabRef")]
    fn double_remove_panics() {
        let mut s = Slab::new();
        let a = s.insert(());
        s.remove(a);
        s.remove(a);
    }

    #[test]
    #[should_panic(expected = "stale SlabRef")]
    fn index_with_stale_ref_panics() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let _ = s.insert(2);
        let _ = s[a];
    }

    #[test]
    fn generation_wraps_without_false_resolution() {
        let mut s = Slab::new();
        let a = s.insert(1u64);
        s.remove(a);
        // Wind the vacant slot's generation to the wrap boundary.
        s.set_generation_for_test(a.index(), u32::MAX);
        let b = s.insert(2u64);
        assert_eq!(b.generation(), u32::MAX);
        assert_eq!(s[b], 2);
        s.remove(b);
        let c = s.insert(3u64);
        assert_eq!(c.generation(), 0, "generation wrapped");
        assert_eq!(s.get(b), None, "pre-wrap ref stays stale");
        assert_eq!(s[c], 3);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut s = Slab::new();
        let refs: Vec<_> = (0..5).map(|i| s.insert(i)).collect();
        for r in &refs {
            s.remove(*r);
        }
        assert_eq!(s.len(), 0);
        assert_eq!(s.high_water(), 5);
        s.insert(99);
        assert_eq!(s.high_water(), 5, "returning below the peak keeps it");
    }

    #[test]
    fn iter_lists_live_entries() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        s.remove(a);
        let live: Vec<_> = s.iter().collect();
        assert_eq!(live, vec![(b, &"b")]);
    }
}
