//! Calibration presets and their invariants.
//!
//! Absolute numbers from a 2009 testbed cannot be recovered exactly; what
//! the reproduction must preserve is the *regime structure* the paper's
//! argument depends on. This module states those requirements as code so
//! that any retuning of parameters keeps the physics honest:
//!
//! 1. **M ≫ P** — migrating a strip between private caches costs much more
//!    than the softirq processing that placed it (§III-A: "data migration
//!    is much more expensive than interrupt handling").
//! 2. **1-GbE starves the CPU** — a single GigE port cannot saturate even
//!    one core, so the NIC is the bottleneck and SAIs' benefit is small
//!    (§V-E: max 15.13 % utilization).
//! 3. **DRAM ≫ NIC** — removing the NIC (the §VI RAM-disk setup) exposes
//!    the CPU/cache behaviour, where SAIs' benefit peaks.

use crate::scenario::ScenarioConfig;
use sais_mem::MemParams;
use sais_net::SegmentPlan;
use sais_sim::SimDuration;

/// Per-strip processing cost `P` under the given configuration: softirq
/// per-packet work plus the cache fill.
pub fn strip_processing_cost(cfg: &ScenarioConfig) -> SimDuration {
    let plan = SegmentPlan::with_sais_option(cfg.strip_size, cfg.mtu);
    let lines = cfg.strip_size / cfg.mem.line_size;
    cfg.cpu.softirq_per_packet * plan.packets + cfg.mem.dram_time(lines)
}

/// Per-strip migration cost `M` under the given configuration: moving
/// every line of a strip between two private caches.
pub fn strip_migration_cost(cfg: &ScenarioConfig) -> SimDuration {
    let lines = cfg.strip_size / cfg.mem.line_size;
    cfg.mem.c2c_time(lines)
}

/// The measured `M / P` ratio for a configuration.
pub fn m_over_p(cfg: &ScenarioConfig) -> f64 {
    strip_migration_cost(cfg).as_secs_f64() / strip_processing_cost(cfg).as_secs_f64()
}

/// Panics if a configuration violates the regime structure above.
/// Called by the figure harness before every sweep.
pub fn assert_regimes(cfg: &ScenarioConfig) {
    // (1) M ≫ P — we require at least 2×; the default preset gives ~2.5×
    // per strip (and ~20× per line against an L2 hit).
    let ratio = m_over_p(cfg);
    assert!(ratio > 2.0, "calibration violates M >> P: M/P = {ratio:.2}");
    // (2) One GigE port delivers fewer strip-processing seconds per second
    // than one core has: the NIC regime is starved.
    let strip_rate_1gig = (1e9 / 8.0) / cfg.strip_size as f64; // strips/s
    let p = strip_processing_cost(cfg).as_secs_f64();
    assert!(
        strip_rate_1gig * p < 0.5,
        "a single core must absorb 1-GbE softirq load with slack"
    );
    // (3) DRAM outruns even the bonded NIC by a wide margin.
    assert!(cfg.mem.dram_bw > 4.0 * (3e9 / 8.0));
}

/// The §VI DRAM preset (DDR2-667, JEDEC PC2-5300: 5333 MB/s).
pub fn ddr2_667() -> MemParams {
    MemParams::sunfire_x4240()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_presets_satisfy_regimes() {
        for cfg in [
            ScenarioConfig::testbed_1gig(8, 1024 * 1024),
            ScenarioConfig::testbed_3gig(48, 2 * 1024 * 1024),
        ] {
            assert_regimes(&cfg);
        }
    }

    #[test]
    fn m_over_p_is_meaningfully_large() {
        let cfg = ScenarioConfig::testbed_3gig(8, 1024 * 1024);
        let r = m_over_p(&cfg);
        assert!(r > 2.0 && r < 20.0, "M/P = {r:.2}");
    }

    #[test]
    fn costs_scale_with_strip_size() {
        let small = ScenarioConfig::testbed_3gig(8, 1024 * 1024);
        let mut big = small.clone();
        big.strip_size = 256 * 1024;
        assert!(strip_migration_cost(&big) > strip_migration_cost(&small) * 3);
        assert!(strip_processing_cost(&big) > strip_processing_cost(&small) * 3);
    }

    #[test]
    #[should_panic(expected = "M >> P")]
    fn broken_calibration_is_caught() {
        let mut cfg = ScenarioConfig::testbed_3gig(8, 1024 * 1024);
        cfg.mem.c2c_line = SimDuration::from_nanos(1); // free migration
        assert_regimes(&cfg);
    }

    #[test]
    fn ddr2_preset() {
        assert_eq!(ddr2_667().dram_bw, 5333e6);
    }
}
