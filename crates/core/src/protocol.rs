//! The steering/degradation protocol as a pure transition system.
//!
//! The SAIs contribution is a small distributed protocol: servers echo a
//! consumer-core hint in every response packet, the client NIC driver
//! parses it per interrupt batch, a per-flow hint-less streak degrades a
//! flow to RSS-style steering at [`sais_apic::steer::DEGRADE_AFTER`], a
//! reappearing hint re-promotes it, and faults (hint loss, option
//! stripping, IRQ coalescing/delay, duplication) perturb every step. The
//! discrete-event [`crate::cluster::Cluster`] exercises this protocol on
//! sampled seeds; this module lifts its core into **pure, side-effect-free
//! functions** so the `sais-mck` explicit-state explorer can enumerate
//! *every* interleaving of a bounded configuration instead.
//!
//! No behavior drift by construction: the live code calls the same
//! functions the model checker checks —
//!
//! * the per-flow steering state machine is
//!   [`sais_apic::steer::steer_step`], called per interrupt by
//!   `Policy::SourceAware` and per [`Action::Deliver`] by [`step`];
//! * the interrupt-layer fault rewrites are [`coalesce_batches`] /
//!   [`delay_batches`], called by `Cluster::handle_strip_at_nic` with the
//!   fault RNG and by [`step`] with adversary-chosen decision bits;
//! * strip completion is [`BatchProgress`], owned by the cluster's
//!   per-strip state and by the model's [`StripSt`].
//!
//! [`step`] composes these into the one-transition function
//! `step(cfg, state, action) -> Result<state', Violation>` the explorer
//! drives; a [`Violation`] is a property breach (double copy, lost work,
//! unbounded steering churn) with enough context to debug.
//!
//! ## The double-copy hazard, and why [`BatchProgress`] guards it
//!
//! The pre-extraction cluster completed a strip with `batches_done += 1;
//! if batches_done < batches_total { return; } /* copy */` — correct when
//! every scheduled batch raises exactly one `BatchReady`, but any
//! *duplicated* ready (the model's duplication fault) pushes the counter
//! past `total` and falls through to a **second copy** of the same strip,
//! violating exactly-once delivery. The explorer finds that trace in a
//! handful of states (see `tests/mck_regressions.rs`, which replays it);
//! [`BatchProgress::batch_ready`] therefore reports the completion edge
//! exactly once and classifies any further ready as [`Ready::Spurious`],
//! which callers drop. [`ProtoConfig::legacy_completion`] re-enables the
//! old semantics so the counterexample stays reproducible forever.

use sais_apic::steer::{self, Route};
use sais_net::InterruptBatch;
use sais_sim::SimDuration;

/// How far one strip's interrupt fan-in has progressed, with an
/// exactly-once completion edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchProgress {
    total: u64,
    done: u64,
}

/// What one `BatchReady` means for the owning strip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ready {
    /// More batches outstanding; keep waiting.
    Pending,
    /// This ready completed the strip — fires exactly once.
    Complete,
    /// A ready beyond completion (a duplicated interrupt). The strip was
    /// already completed; callers must not complete it again.
    Spurious,
}

impl BatchProgress {
    /// Progress for a strip that fans into `total` interrupt batches.
    pub fn arm(total: u64) -> Self {
        BatchProgress { total, done: 0 }
    }

    /// Progress for a strip with no interrupt fan-in (the write path's
    /// ack strips): never reports completion.
    pub fn unarmed() -> Self {
        BatchProgress::default()
    }

    /// Account one `BatchReady`. The completion edge ([`Ready::Complete`])
    /// fires exactly once, on the ready that brings `done` up to `total`;
    /// anything past it is [`Ready::Spurious`].
    #[inline]
    pub fn batch_ready(&mut self) -> Ready {
        self.done += 1;
        match self.done.cmp(&self.total) {
            std::cmp::Ordering::Less => Ready::Pending,
            std::cmp::Ordering::Equal => Ready::Complete,
            std::cmp::Ordering::Greater => Ready::Spurious,
        }
    }

    /// Batches expected in total.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Batches accounted so far (may exceed `total` under duplication).
    pub fn done(&self) -> u64 {
        self.done
    }
}

/// Rewrite a NIC batch schedule through a flaky coalescer: batch `i` is
/// merged into its successor whenever `merge_into_next(i)` says so (the
/// last batch is never merged forward, so frames and bytes are conserved
/// by construction). Returns the rewritten schedule and the number of
/// merges. Pure given the decision sequence; the cluster passes the fault
/// RNG, the model checker passes adversary-chosen bits. `merge_into_next`
/// is consulted exactly once per non-final batch, in index order — the
/// cluster's fault-RNG draw order is part of the byte-identity contract.
pub fn coalesce_batches(
    batches: &[InterruptBatch],
    mut merge_into_next: impl FnMut(usize) -> bool,
) -> (Vec<InterruptBatch>, u64) {
    debug_assert!(!batches.is_empty());
    let last = batches.len() - 1;
    let mut merged = Vec::with_capacity(batches.len());
    let mut merges = 0u64;
    let mut carry_frames = 0u64;
    let mut carry_bytes = 0u64;
    for (i, b) in batches.iter().enumerate() {
        if i < last && merge_into_next(i) {
            carry_frames += b.frames;
            carry_bytes += b.bytes;
            merges += 1;
            continue;
        }
        merged.push(InterruptBatch {
            time: b.time,
            frames: b.frames + carry_frames,
            bytes: b.bytes + carry_bytes,
        });
        carry_frames = 0;
        carry_bytes = 0;
    }
    (merged, merges)
}

/// Push individual batches of a schedule `by` later whenever `delayed(i)`
/// says so (a slow interrupt controller posting some batches late, which
/// can reorder them against their neighbours). Returns the number of
/// delayed batches. `delayed` is consulted exactly once per batch, in
/// index order — again part of the cluster's RNG draw-order contract.
pub fn delay_batches(
    batches: &mut [InterruptBatch],
    by: SimDuration,
    mut delayed: impl FnMut(usize) -> bool,
) -> u64 {
    let mut count = 0u64;
    for (i, b) in batches.iter_mut().enumerate() {
        if delayed(i) {
            b.time += by;
            count += 1;
        }
    }
    count
}

// ---------------------------------------------------------------------------
// The bounded model the explorer enumerates.
// ---------------------------------------------------------------------------

/// Which faults the adversary may play (the model-checking alphabet).
///
/// The option-stripping middlebox is configured separately
/// ([`ProtoConfig::stripped_flows`]) because it is *stateless per flow*:
/// a flow is behind the middlebox for the whole run or not at all, so it
/// is initial-configuration choice, not a per-step action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAlphabet {
    /// Transient hint loss: any single interrupt of an unstripped flow
    /// may arrive hint-less (header corruption failing closed).
    pub hint_loss: bool,
    /// Interrupt duplication: an already-raised interrupt may be raised
    /// again (budgeted by [`ProtoConfig::dup_budget`]).
    pub duplication: bool,
    /// Wire reordering: a strip's batches may be delivered out of order.
    pub reorder: bool,
    /// Delayed IRQ batches: a batch may be overtaken by its successors.
    /// In this untimed model `delay` and `reorder` both manifest as
    /// within-strip out-of-order delivery (cross-strip interleaving is
    /// always free, exactly as in the concurrent DES), so either flag
    /// enables it; both exist so configurations can name what they model.
    pub delay: bool,
    /// Extra IRQ coalescing: adversary-chosen merge patterns at arrival
    /// (rewritten through the live [`coalesce_batches`]).
    pub coalesce: bool,
}

impl FaultAlphabet {
    /// Every fault enabled — the configuration the CI proof runs.
    pub fn full() -> Self {
        FaultAlphabet {
            hint_loss: true,
            duplication: true,
            reorder: true,
            delay: true,
            coalesce: true,
        }
    }

    /// No faults: the clean protocol.
    pub fn none() -> Self {
        FaultAlphabet {
            hint_loss: false,
            duplication: false,
            reorder: false,
            delay: false,
            coalesce: false,
        }
    }

    /// Whether batches within one strip may be delivered out of order.
    pub fn out_of_order(&self) -> bool {
        self.reorder || self.delay
    }
}

/// A bounded protocol configuration for exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoConfig {
    /// Client cores (hint targets and RSS spread range).
    pub cores: u8,
    /// Concurrent flows (client ↔ server connections).
    pub flows: u8,
    /// Strips fanned out per flow.
    pub strips_per_flow: u8,
    /// Interrupt batches per strip before coalescing.
    pub batches_per_strip: u8,
    /// Flows `0..stripped_flows` sit behind an option-stripping
    /// middlebox: their interrupts can never carry a hint.
    pub stripped_flows: u8,
    /// The adversary's per-step fault alphabet.
    pub faults: FaultAlphabet,
    /// Maximum duplicated interrupts the adversary may inject.
    pub dup_budget: u8,
    /// Use the pre-extraction completion semantics (`done < total`
    /// fall-through) instead of the [`BatchProgress`] exactly-once edge.
    /// Exists so the explorer can reproduce — and regression tests can
    /// replay — the double-copy counterexample the guard fixes.
    pub legacy_completion: bool,
}

impl ProtoConfig {
    /// The CI proof configuration: 2 cores × 2 flows (one stripped),
    /// full fault alphabet.
    pub fn ci() -> Self {
        ProtoConfig {
            cores: 2,
            flows: 2,
            strips_per_flow: 1,
            batches_per_strip: 3,
            stripped_flows: 1,
            faults: FaultAlphabet::full(),
            dup_budget: 1,
            legacy_completion: false,
        }
    }

    /// Total strips in the configuration.
    pub fn total_strips(&self) -> usize {
        self.flows as usize * self.strips_per_flow as usize
    }

    /// The flow a strip index belongs to (strips are laid out
    /// flow-major: strip `s` belongs to flow `s / strips_per_flow`).
    pub fn flow_of(&self, strip: usize) -> usize {
        strip / self.strips_per_flow.max(1) as usize
    }

    /// Whether `flow` sits behind the option-stripping middlebox.
    pub fn is_stripped(&self, flow: usize) -> bool {
        flow < self.stripped_flows as usize
    }
}

/// Per-flow steering state plus the bookkeeping the livelock property
/// needs (how often the adversary actually alternated hint visibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowSt {
    /// Hint-less streak, exactly as `Policy::SourceAware` keeps it.
    pub streak: u32,
    /// Degradation episodes started.
    pub degrades: u32,
    /// Degradation episodes ended by a re-promoting hint.
    pub repromotes: u32,
    /// Hint-visibility alternations in this flow's interrupt sequence.
    pub flips: u32,
    /// Last interrupt's hint visibility: 0 = none yet, 1 = hinted,
    /// 2 = hint-less.
    pub last_hinted: u8,
}

impl FlowSt {
    /// Whether the flow is currently on the degraded RSS path.
    pub fn is_degraded(&self) -> bool {
        steer::is_degraded(self.streak)
    }
}

/// Per-strip delivery state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripSt {
    /// Whether the strip's response stream has reached the NIC (and its
    /// batch schedule, post-coalesce, been fixed).
    pub arrived: bool,
    /// Frames of each still-pending interrupt batch, in schedule order.
    pub pending: Vec<u8>,
    /// Fan-in completion state (armed at arrival).
    pub progress: BatchProgress,
    /// Frames whose interrupts have been raised and handled.
    pub frames_done: u32,
    /// A completion edge fired and the copy has not run yet.
    pub copy_ready: bool,
    /// Times the strip was copied to the user buffer (the exactly-once
    /// property says this ends at 1 and never reaches 2).
    pub copies: u8,
}

/// The whole protocol state: flows × strips plus the adversary's spent
/// duplication budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoState {
    /// Per-flow steering state, indexed by flow id.
    pub flows: Vec<FlowSt>,
    /// Per-strip delivery state, flow-major (see [`ProtoConfig::flow_of`]).
    pub strips: Vec<StripSt>,
    /// Duplicated interrupts injected so far.
    pub dups_used: u8,
}

impl ProtoState {
    /// The initial state of a configuration: nothing arrived, no streaks.
    pub fn initial(cfg: &ProtoConfig) -> Self {
        ProtoState {
            flows: vec![FlowSt::default(); cfg.flows as usize],
            strips: (0..cfg.total_strips())
                .map(|_| StripSt {
                    arrived: false,
                    pending: Vec::new(),
                    progress: BatchProgress::unarmed(),
                    frames_done: 0,
                    copy_ready: false,
                    copies: 0,
                })
                .collect(),
            dups_used: 0,
        }
    }
}

/// One protocol or adversary move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// A strip's response stream reaches the NIC; bit `i` of `merges`
    /// asks the flaky coalescer to merge batch `i` into its successor
    /// (the last batch's bit is ignored, as in the live rewrite).
    Arrive {
        /// Strip index.
        strip: u8,
        /// Coalesce-decision bitmask.
        merges: u8,
    },
    /// A pending interrupt batch is raised and handled: the steering
    /// decision runs (hint visibility chosen by the adversary where the
    /// alphabet allows) and the strip's fan-in advances.
    Deliver {
        /// Strip index.
        strip: u8,
        /// Index into the strip's pending-batch schedule.
        batch: u8,
        /// Whether the batch's header still carries a valid hint.
        hinted: bool,
    },
    /// An already-raised interrupt is raised again (duplication fault):
    /// the handler runs a second time with no new frames.
    Dup {
        /// Strip index.
        strip: u8,
        /// Hint visibility of the duplicated delivery.
        hinted: bool,
    },
    /// The completed strip is copied to the user buffer.
    Copy {
        /// Strip index.
        strip: u8,
    },
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Arrive { strip, merges } => {
                write!(f, "arrive strip={strip} merges={merges:#b}")
            }
            Action::Deliver {
                strip,
                batch,
                hinted,
            } => write!(f, "deliver strip={strip} batch={batch} hinted={hinted}"),
            Action::Dup { strip, hinted } => write!(f, "dup strip={strip} hinted={hinted}"),
            Action::Copy { strip } => write!(f, "copy strip={strip}"),
        }
    }
}

/// A property breach, with the context a counterexample trace needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Exactly-once delivery broken: a strip was copied twice.
    DoubleCopy {
        /// The strip copied twice.
        strip: u8,
    },
    /// A terminal state left a strip undelivered (lost interrupt).
    LostStrip {
        /// The strip that never completed.
        strip: u8,
        /// Batches accounted when the run wedged.
        done: u64,
        /// Batches the schedule promised.
        total: u64,
    },
    /// A terminal state lost payload frames.
    FrameLoss {
        /// The strip short on frames.
        strip: u8,
        /// Frames whose interrupts were handled.
        delivered: u32,
        /// Frames the strip arrived with.
        expected: u32,
    },
    /// Steering churn exceeded the adversary's hint alternations:
    /// degrade/re-promote flapping not attributable to the environment —
    /// a protocol-generated livelock.
    ChurnBound {
        /// The flapping flow.
        flow: u8,
        /// Degrades + re-promotes observed.
        churn: u32,
        /// Hint-visibility alternations the adversary performed.
        flips: u32,
    },
    /// Churn events out of order (a degrade while degraded, or a
    /// re-promote while not).
    ChurnOrder {
        /// The offending flow.
        flow: u8,
    },
    /// The action is not enabled in the given state (malformed trace).
    IllegalAction {
        /// The rejected action.
        action: Action,
        /// Why it is not enabled.
        why: &'static str,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DoubleCopy { strip } => {
                write!(f, "exactly-once broken: strip {strip} copied twice")
            }
            Violation::LostStrip { strip, done, total } => write!(
                f,
                "lost interrupt: strip {strip} wedged at {done}/{total} batches"
            ),
            Violation::FrameLoss {
                strip,
                delivered,
                expected,
            } => write!(
                f,
                "frame loss: strip {strip} delivered {delivered}/{expected} frames"
            ),
            Violation::ChurnBound { flow, churn, flips } => write!(
                f,
                "steering livelock: flow {flow} churned {churn}x on {flips} hint flips"
            ),
            Violation::ChurnOrder { flow } => {
                write!(f, "churn order broken on flow {flow}")
            }
            Violation::IllegalAction { action, why } => {
                write!(f, "illegal action `{action}`: {why}")
            }
        }
    }
}

/// Apply one action to the protocol state. Pure: the inputs are borrowed,
/// the successor state is returned, and a [`Violation`] is returned
/// instead if the action breaches a safety property (or is not enabled —
/// malformed traces fail closed).
pub fn step(
    cfg: &ProtoConfig,
    state: &ProtoState,
    action: &Action,
) -> Result<ProtoState, Violation> {
    let illegal = |why| Violation::IllegalAction {
        action: *action,
        why,
    };
    let mut next = state.clone();
    match *action {
        Action::Arrive { strip, merges } => {
            let s = next
                .strips
                .get_mut(strip as usize)
                .ok_or(illegal("no such strip"))?;
            if s.arrived {
                return Err(illegal("strip already arrived"));
            }
            if merges != 0 && !cfg.faults.coalesce {
                return Err(illegal("coalesce fault disabled"));
            }
            // One frame per pre-coalesce batch; the schedule is rewritten
            // through the *live* coalescer with adversary-chosen bits.
            let schedule: Vec<InterruptBatch> = (0..cfg.batches_per_strip)
                .map(|_| InterruptBatch {
                    time: sais_sim::SimTime::ZERO,
                    frames: 1,
                    bytes: 0,
                })
                .collect();
            // Decision bits beyond bit 7 read as zero (no merge), so huge
            // custom schedules cannot overflow the shift.
            let (merged, _) = coalesce_batches(&schedule, |i| i < 8 && merges & (1u8 << i) != 0);
            s.pending = merged.iter().map(|b| b.frames as u8).collect();
            s.progress = BatchProgress::arm(merged.len() as u64);
            s.arrived = true;
        }
        Action::Deliver {
            strip,
            batch,
            hinted,
        } => {
            let flow = cfg.flow_of(strip as usize);
            {
                let s = next
                    .strips
                    .get_mut(strip as usize)
                    .ok_or(illegal("no such strip"))?;
                if !s.arrived {
                    return Err(illegal("strip not arrived"));
                }
                if batch as usize >= s.pending.len() {
                    return Err(illegal("no such pending batch"));
                }
                if batch != 0 && !cfg.faults.out_of_order() {
                    return Err(illegal("out-of-order delivery disabled"));
                }
                let frames = s.pending.remove(batch as usize);
                s.frames_done += frames as u32;
            }
            steer_and_advance(cfg, &mut next, flow, strip, hinted, true)?;
        }
        Action::Dup { strip, hinted } => {
            if !cfg.faults.duplication {
                return Err(illegal("duplication fault disabled"));
            }
            if next.dups_used >= cfg.dup_budget {
                return Err(illegal("duplication budget spent"));
            }
            let flow = cfg.flow_of(strip as usize);
            {
                let s = next
                    .strips
                    .get(strip as usize)
                    .ok_or(illegal("no such strip"))?;
                if s.progress.done() == 0 {
                    return Err(illegal("nothing raised yet to duplicate"));
                }
            }
            next.dups_used += 1;
            steer_and_advance(cfg, &mut next, flow, strip, hinted, false)?;
        }
        Action::Copy { strip } => {
            let s = next
                .strips
                .get_mut(strip as usize)
                .ok_or(illegal("no such strip"))?;
            if !s.copy_ready {
                return Err(illegal("strip not ready to copy"));
            }
            s.copy_ready = false;
            s.copies += 1;
            if s.copies > 1 {
                return Err(Violation::DoubleCopy { strip });
            }
        }
    }
    Ok(next)
}

/// The shared tail of `Deliver` and `Dup`: run the steering decision
/// through the live kernel, enforce the churn properties, and advance the
/// strip's fan-in through [`BatchProgress`] (or the legacy fall-through).
fn steer_and_advance(
    cfg: &ProtoConfig,
    next: &mut ProtoState,
    flow: usize,
    strip: u8,
    hinted: bool,
    _genuine: bool,
) -> Result<(), Violation> {
    if hinted && cfg.is_stripped(flow) {
        return Err(Violation::IllegalAction {
            action: Action::Deliver {
                strip,
                batch: 0,
                hinted,
            },
            why: "stripped flow cannot carry a hint",
        });
    }
    if !hinted && !cfg.faults.hint_loss && !cfg.is_stripped(flow) {
        return Err(Violation::IllegalAction {
            action: Action::Deliver {
                strip,
                batch: 0,
                hinted,
            },
            why: "hint loss disabled for unstripped flows",
        });
    }
    let f = &mut next.flows[flow];
    // Adversary alternation bookkeeping for the livelock bound.
    let vis = if hinted { 1 } else { 2 };
    if f.last_hinted != 0 && f.last_hinted != vis {
        f.flips += 1;
    }
    f.last_hinted = vis;
    let was_degraded = f.is_degraded();
    let s = steer::steer_step(f.streak, hinted);
    f.streak = s.streak;
    if s.degraded {
        if was_degraded {
            return Err(Violation::ChurnOrder { flow: flow as u8 });
        }
        f.degrades += 1;
    }
    if s.repromoted {
        if !was_degraded {
            return Err(Violation::ChurnOrder { flow: flow as u8 });
        }
        f.repromotes += 1;
    }
    // Route sanity: the kernel's abstract route must be resolvable.
    match s.route {
        Route::Hint => debug_assert!(hinted),
        Route::Rss => {
            debug_assert!(steer::rss_spread(flow as u64, cfg.cores as usize) < cfg.cores as usize);
        }
        Route::Fallback => {}
    }
    // The livelock property: churn is bounded by the adversary's hint
    // alternations — the protocol never flaps on a steady environment.
    if f.degrades + f.repromotes > f.flips + 1 {
        return Err(Violation::ChurnBound {
            flow: flow as u8,
            churn: f.degrades + f.repromotes,
            flips: f.flips,
        });
    }
    let st = &mut next.strips[strip as usize];
    if cfg.legacy_completion {
        // The pre-extraction cluster check: any ready at or past `total`
        // falls through to the copy path.
        let legacy = {
            st.progress.batch_ready();
            st.progress.done() >= st.progress.total()
        };
        if legacy {
            st.copy_ready = true;
        }
    } else {
        match st.progress.batch_ready() {
            Ready::Pending => {}
            Ready::Complete => st.copy_ready = true,
            Ready::Spurious => {}
        }
    }
    Ok(())
}

/// Check the terminal-state (liveness-by-exhaustion) properties: every
/// strip delivered exactly once with all frames accounted. The explorer
/// calls this on states with no enabled action.
pub fn check_terminal(_cfg: &ProtoConfig, state: &ProtoState) -> Result<(), Violation> {
    for (i, s) in state.strips.iter().enumerate() {
        if s.copies != 1 {
            return Err(Violation::LostStrip {
                strip: i as u8,
                done: s.progress.done(),
                total: s.progress.total(),
            });
        }
        let expected = s.frames_done; // frames arrived == frames delivered
        if !s.pending.is_empty() || !s.arrived {
            return Err(Violation::FrameLoss {
                strip: i as u8,
                delivered: s.frames_done,
                expected: expected + s.pending.iter().map(|&f| f as u32).sum::<u32>(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sais_sim::SimTime;

    fn batch(frames: u64) -> InterruptBatch {
        InterruptBatch {
            time: SimTime::ZERO,
            frames,
            bytes: frames * 1500,
        }
    }

    #[test]
    fn batch_progress_fires_completion_exactly_once() {
        let mut p = BatchProgress::arm(3);
        assert_eq!(p.batch_ready(), Ready::Pending);
        assert_eq!(p.batch_ready(), Ready::Pending);
        assert_eq!(p.batch_ready(), Ready::Complete);
        assert_eq!(p.batch_ready(), Ready::Spurious);
        assert_eq!(p.batch_ready(), Ready::Spurious);
        assert_eq!(p.total(), 3);
        assert_eq!(p.done(), 5);
    }

    #[test]
    fn unarmed_progress_never_completes() {
        let mut p = BatchProgress::unarmed();
        // A ready against an unarmed strip (impossible in the DES) is
        // spurious, never a completion.
        assert_eq!(p.batch_ready(), Ready::Spurious);
    }

    #[test]
    fn coalesce_conserves_frames_and_bytes() {
        let batches = vec![batch(4), batch(4), batch(4), batch(2)];
        let total_f: u64 = batches.iter().map(|b| b.frames).sum();
        let total_b: u64 = batches.iter().map(|b| b.bytes).sum();
        for mask in 0u8..8 {
            let (merged, merges) = coalesce_batches(&batches, |i| mask & (1 << i) != 0);
            assert_eq!(merged.iter().map(|b| b.frames).sum::<u64>(), total_f);
            assert_eq!(merged.iter().map(|b| b.bytes).sum::<u64>(), total_b);
            assert_eq!(merged.len() as u64, 4 - merges);
            assert_eq!(merges, u64::from(mask.count_ones()));
        }
    }

    #[test]
    fn coalesce_never_merges_the_last_batch_forward() {
        let batches = vec![batch(1), batch(1)];
        let mut consulted = Vec::new();
        let (merged, _) = coalesce_batches(&batches, |i| {
            consulted.push(i);
            true
        });
        // Only the non-final batch is offered to the coalescer.
        assert_eq!(consulted, vec![0]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].frames, 2);
    }

    #[test]
    fn delay_consults_every_batch_in_order() {
        let mut batches = vec![batch(1), batch(1), batch(1)];
        let mut consulted = Vec::new();
        let n = delay_batches(&mut batches, SimDuration::from_micros(50), |i| {
            consulted.push(i);
            i == 1
        });
        assert_eq!(consulted, vec![0, 1, 2]);
        assert_eq!(n, 1);
        assert_eq!(
            batches[1].time,
            SimTime::ZERO + SimDuration::from_micros(50)
        );
        assert_eq!(batches[0].time, SimTime::ZERO);
    }

    #[test]
    fn clean_run_completes_one_strip() {
        let cfg = ProtoConfig {
            cores: 2,
            flows: 1,
            strips_per_flow: 1,
            batches_per_strip: 2,
            stripped_flows: 0,
            faults: FaultAlphabet::none(),
            dup_budget: 0,
            legacy_completion: false,
        };
        let s0 = ProtoState::initial(&cfg);
        let s1 = step(
            &cfg,
            &s0,
            &Action::Arrive {
                strip: 0,
                merges: 0,
            },
        )
        .unwrap();
        let s2 = step(
            &cfg,
            &s1,
            &Action::Deliver {
                strip: 0,
                batch: 0,
                hinted: true,
            },
        )
        .unwrap();
        let s3 = step(
            &cfg,
            &s2,
            &Action::Deliver {
                strip: 0,
                batch: 0,
                hinted: true,
            },
        )
        .unwrap();
        assert!(s3.strips[0].copy_ready);
        let s4 = step(&cfg, &s3, &Action::Copy { strip: 0 }).unwrap();
        assert_eq!(s4.strips[0].copies, 1);
        check_terminal(&cfg, &s4).unwrap();
        // A second copy is not enabled.
        assert!(matches!(
            step(&cfg, &s4, &Action::Copy { strip: 0 }),
            Err(Violation::IllegalAction { .. })
        ));
    }

    #[test]
    fn step_is_pure_inputs_untouched() {
        let cfg = ProtoConfig::ci();
        let s0 = ProtoState::initial(&cfg);
        let snapshot = s0.clone();
        let _ = step(
            &cfg,
            &s0,
            &Action::Arrive {
                strip: 0,
                merges: 0,
            },
        )
        .unwrap();
        assert_eq!(s0, snapshot);
    }

    #[test]
    fn churn_on_steady_hintless_flow_is_one_degrade() {
        // A fully stripped flow never flaps: one degrade, zero
        // re-promotes, regardless of delivery order.
        let cfg = ProtoConfig {
            cores: 2,
            flows: 1,
            strips_per_flow: 1,
            batches_per_strip: 3,
            stripped_flows: 1,
            faults: FaultAlphabet::full(),
            dup_budget: 0,
            legacy_completion: false,
        };
        let mut st = ProtoState::initial(&cfg);
        st = step(
            &cfg,
            &st,
            &Action::Arrive {
                strip: 0,
                merges: 0,
            },
        )
        .unwrap();
        for _ in 0..3 {
            st = step(
                &cfg,
                &st,
                &Action::Deliver {
                    strip: 0,
                    batch: 0,
                    hinted: false,
                },
            )
            .unwrap();
        }
        assert_eq!(st.flows[0].degrades, 1);
        assert_eq!(st.flows[0].repromotes, 0);
        assert_eq!(st.flows[0].flips, 0);
        assert!(st.flows[0].is_degraded());
    }
}
