//! # sais-core — Source-Aware Interrupt Scheduling (SAIs)
//!
//! Library reproduction of *"A Source-aware Interrupt Scheduling for Modern
//! Parallel I/O Systems"* (Zou, Sun, Ma, Duan — IIT, 2012).
//!
//! SAIs ties interrupt handling to data consumption: every parallel-I/O
//! read request carries the requesting core's id (`aff_core_id`); the PVFS
//! servers echo it inside the IP options field of each response packet; and
//! the client steers all the *peer interrupts* of a request to that core,
//! eliminating the cache-to-cache strip migrations that conventional
//! utilization-balancing interrupt scheduling (irqbalance, round-robin,
//! dedicated-core) provokes.
//!
//! The crate provides:
//!
//! * [`components`] — the three client-side SAIs components from the paper's
//!   Fig. 3 (`HintMessager`, `SrcParser`, `IMComposer`) plus the server-side
//!   `HintCapsuler`, each unit-testable in isolation;
//! * [`cluster`] — a full discrete-event model of the testbed (client
//!   node(s) with per-core caches, bonded NIC, APIC; PVFS metadata + I/O
//!   servers; switch fabric) on which any [`sais_apic::Policy`] can be run;
//! * [`scenario`] — experiment configuration and the `RunMetrics` the
//!   figure harness consumes;
//! * [`analysis`] — the closed-form cost model of paper §III (eqs. 1–9);
//! * [`memsim`] — the paper §VI in-memory simulation that removes the NIC
//!   bottleneck (Fig. 14);
//! * [`calib`] — the parameter presets tying the model to the Sun-Fire
//!   testbed.
//!
//! ## Quickstart
//!
//! ```
//! use sais_core::scenario::{ScenarioConfig, PolicyChoice};
//!
//! // A small 3-Gigabit configuration: 8 servers, 512 KB transfers.
//! let mut cfg = ScenarioConfig::testbed_3gig(8, 512 * 1024);
//! cfg.file_size = 16 * 1024 * 1024; // scaled down for the doctest
//! let sais = cfg.clone().with_policy(PolicyChoice::SourceAware).run();
//! let irqb = cfg.with_policy(PolicyChoice::LowestLoaded).run();
//! assert!(sais.bandwidth_bytes_per_sec() > irqb.bandwidth_bytes_per_sec());
//! assert_eq!(sais.strip_migrations, 0);
//! ```

pub mod analysis;
pub mod calib;
pub mod cluster;
pub mod components;
pub mod memsim;
pub mod protocol;
pub mod report;
pub mod scenario;
pub mod slab;
pub mod telemetry;

pub use components::{HintCapsuler, HintMessager, IMComposer, SrcParser};
pub use scenario::{PolicyChoice, RunMetrics, ScenarioConfig};
