//! The paper's §III quantitative analysis (equations 1–9), in executable
//! form.
//!
//! Notation (paper → here): `N_C` client cores, `N_S` I/O servers
//! (`N_S = α·N_C`), `N_R` requests, `N_P` programs, `P` per-strip
//! processing time, `M` per-strip migration time, `T_R` the
//! network/server residue that no interrupt schedule can change.
//!
//! The equations are *bounds*, and the code keeps them as bounds: balanced
//! scheduling gets a lower bound on its completion time (eq. 3/6), SAIs an
//! exact variable part (eq. 4/5). The integration test
//! `tests/model_vs_sim.rs` checks the discrete-event simulator respects the
//! same ordering.

/// Inputs to the analytic model. Times in seconds (any consistent unit
/// works — only ratios matter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticModel {
    /// Client cores `N_C`.
    pub n_c: u64,
    /// I/O servers `N_S` (a multiple of `n_c` in the paper's analysis).
    pub n_s: u64,
    /// Requests `N_R`.
    pub n_r: u64,
    /// Concurrent programs `N_P`.
    pub n_p: u64,
    /// Per-strip processing time `P`.
    pub p: f64,
    /// Per-strip migration time `M` (the paper assumes `M ≫ P`).
    pub m: f64,
    /// Residual time `T_R` (network + server), identical across policies.
    pub t_r: f64,
}

impl AnalyticModel {
    /// The paper's `α = N_S / N_C` (requires divisibility, as assumed in
    /// §III-A "for simplicity").
    pub fn alpha(&self) -> u64 {
        assert!(
            self.n_s.is_multiple_of(self.n_c),
            "the paper's analysis assumes N_C divides N_S"
        );
        self.n_s / self.n_c
    }

    /// Eq. (3): lower bound on a *single* request under balanced
    /// scheduling: `T ≥ T_R + M·α·(N_C − 1)`.
    pub fn t_balance_single(&self) -> f64 {
        self.t_r + self.m * self.alpha() as f64 * (self.n_c - 1) as f64
    }

    /// Eq. (4): single request under source-aware scheduling:
    /// `T = T_R + P·N_S`.
    pub fn t_source_aware_single(&self) -> f64 {
        self.t_r + self.p * self.n_s as f64
    }

    /// Eq. (6): lower bound under balanced scheduling with `N_R` requests:
    /// `T ≥ T_R + M·α·(N_C − 1)·N_R`.
    pub fn t_balance_multi(&self) -> f64 {
        self.t_r + self.m * self.alpha() as f64 * ((self.n_c - 1) * self.n_r) as f64
    }

    /// Eq. (5): source-aware with `N_R` requests:
    /// `T = T_R + P·N_S·N_R`.
    pub fn t_source_aware_multi(&self) -> f64 {
        self.t_r + self.p * (self.n_s * self.n_r) as f64
    }

    /// Eq. (8): with `N_P ≤ N_C` programs, source-aware handling spreads
    /// over `N_P` cores; returns `(lower, upper)` bounds:
    /// `T_R + P·N_S·N_R/N_P ≤ T ≤ T_R + P·N_S·N_R`.
    pub fn t_source_aware_programs(&self) -> (f64, f64) {
        let upper = self.t_source_aware_multi();
        let lower = self.t_r + self.p * (self.n_s * self.n_r) as f64 / self.n_p as f64;
        (lower, upper)
    }

    /// Eq. (9): with `N_P > N_C`, the guaranteed gap between the policies:
    /// `T_balance − T_source-aware ≥ (N_C − 1)·N_R·α·(M − P)`.
    pub fn guaranteed_gap_saturated(&self) -> f64 {
        ((self.n_c - 1) * self.n_r) as f64 * self.alpha() as f64 * (self.m - self.p)
    }

    /// Eq. (7): the bandwidth coupling — `N_R·N_S·size_req ≤ BW` means the
    /// request rate the client can sustain is bounded by its NIC. Returns
    /// the largest `N_R` admissible for a given per-strip request size and
    /// client bandwidth over a 1-second window.
    pub fn max_requests_for_bandwidth(&self, size_req: f64, bandwidth: f64) -> u64 {
        assert!(size_req > 0.0 && bandwidth > 0.0);
        (bandwidth / (self.n_s as f64 * size_req)).floor() as u64
    }

    /// Predicted speed-up of source-aware over balanced for the
    /// multi-request case, using the balanced *lower bound* (hence this is
    /// a conservative prediction): `T_balance/T_sais − 1`.
    pub fn predicted_speedup(&self) -> f64 {
        self.t_balance_multi() / self.t_source_aware_multi() - 1.0
    }
}

/// A parameterization matching the simulator's default calibration, for
/// model-vs-simulation comparisons: P and M measured per strip.
pub fn calibrated(n_c: u64, n_s: u64, n_r: u64, t_r: f64) -> AnalyticModel {
    AnalyticModel {
        n_c,
        n_s,
        n_r,
        n_p: 1,
        // Per-strip softirq processing: 46 packets ≈ 37 µs + 12 µs fill.
        p: 49e-6,
        // Per-strip migration: 1024 lines × 120 ns.
        m: 123e-6,
        t_r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> AnalyticModel {
        AnalyticModel {
            n_c: 8,
            n_s: 48,
            n_r: 100,
            n_p: 1,
            p: 49e-6,
            m: 123e-6,
            t_r: 0.5,
        }
    }

    #[test]
    fn alpha_and_divisibility() {
        assert_eq!(base().alpha(), 6);
    }

    #[test]
    #[should_panic(expected = "divides")]
    fn non_divisible_panics() {
        let m = AnalyticModel { n_s: 49, ..base() };
        m.alpha();
    }

    #[test]
    fn source_aware_wins_when_m_much_greater_than_p() {
        let m = base();
        // The §III-B conclusion: T_balanced − T_R ≫ T_source-aware − T_R.
        assert!(m.t_balance_single() > m.t_source_aware_single());
        assert!(m.t_balance_multi() > m.t_source_aware_multi());
        assert!(m.predicted_speedup() > 0.0);
    }

    #[test]
    fn balanced_wins_if_migration_were_free() {
        // Sanity inversion: with M = 0 (free migration) the bound flips and
        // balanced scheduling looks better. This is exactly why the paper
        // must establish M ≫ P empirically.
        let m = AnalyticModel { m: 0.0, ..base() };
        assert!(m.t_balance_multi() < m.t_source_aware_multi());
    }

    #[test]
    fn gap_grows_with_servers_and_requests() {
        let m = base();
        let more_servers = AnalyticModel { n_s: 96, ..m };
        let more_requests = AnalyticModel { n_r: 200, ..m };
        let gap = |x: &AnalyticModel| x.t_balance_multi() - x.t_source_aware_multi();
        assert!(gap(&more_servers) > gap(&m));
        assert!(gap(&more_requests) > gap(&m));
    }

    #[test]
    fn program_bounds_bracket_and_tighten() {
        let m = AnalyticModel { n_p: 4, ..base() };
        let (lo, hi) = m.t_source_aware_programs();
        assert!(lo <= hi);
        assert_eq!(hi, m.t_source_aware_multi());
        // More programs → lower bound improves (more handling parallelism).
        let m8 = AnalyticModel { n_p: 8, ..base() };
        assert!(m8.t_source_aware_programs().0 < lo);
    }

    #[test]
    fn saturated_gap_formula() {
        let m = base();
        // (N_C−1)·N_R·α·(M−P) = 7·100·6·(74 µs).
        let expect = 7.0 * 100.0 * 6.0 * (123e-6 - 49e-6);
        assert!((m.guaranteed_gap_saturated() - expect).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_coupling_limits_requests() {
        let m = base();
        // 48 servers × 64 KB strips over a 3 Gb/s (375 MB/s) client NIC:
        // at most 119 full-fan-out requests per second.
        let n = m.max_requests_for_bandwidth(65536.0, 375e6);
        assert_eq!(n, 119);
        // Doubling the servers halves the admissible request rate — the
        // implicit N_S/N_R trade-off the paper points out under eq. (7).
        let m2 = AnalyticModel { n_s: 96, ..m };
        assert_eq!(m2.max_requests_for_bandwidth(65536.0, 375e6), 59);
    }

    #[test]
    fn residue_dilutes_speedup() {
        // §III-D: "If network peak bandwidth is a limitation, more
        // efficient interrupt scheduling will not make much difference."
        let tight = AnalyticModel { t_r: 0.1, ..base() };
        let loose = AnalyticModel {
            t_r: 10.0,
            ..base()
        };
        assert!(tight.predicted_speedup() > loose.predicted_speedup());
    }

    #[test]
    fn calibrated_matches_defaults() {
        let m = calibrated(8, 48, 10, 0.2);
        assert_eq!(m.n_c, 8);
        assert!(m.m / m.p > 2.0, "calibration preserves M >> P");
    }
}
