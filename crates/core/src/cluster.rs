//! The full-system discrete-event model: client node(s) + PVFS deployment.
//!
//! One event per meaningful hardware/software step, mirroring Fig. 3 of the
//! paper:
//!
//! ```text
//! Issue ──request+hint──▶ I/O servers ──strips──▶ StripAtNic
//!   StripAtNic ──coalesced batches──▶ HardIrq (SrcParser + IMComposer
//!     pick the core) ──softirq fill on handler core──▶ BatchReady
//!   BatchReady(last) ──copy to user on consumer core──▶ StripCopied
//!   StripCopied(last of read) ──compute phase──▶ ComputeDone ──▶ Issue…
//! ```
//!
//! Every cache touch goes through the [`sais_mem::MemorySystem`], so
//! cache-to-cache strip migration is *observed*, not assumed; every unit of
//! CPU work runs on a [`sais_cpu::CpuCore`], so utilization and
//! `CPU_CLK_UNHALTED` fall out of the same bookkeeping.

use crate::components::{HintCapsuler, HintMessager, IMComposer, SrcParser};
use crate::protocol;
use crate::scenario::{IoDirection, RunMetrics, ScenarioConfig};
use crate::slab::{Slab, SlabRef};
use crate::telemetry::TelemetrySampler;
use sais_apic::IoApic;
use sais_cpu::{CpuCore, CpuReport, LoadTracker, Process, WakePlacement, WorkClass};
use sais_mem::fxmap::FxHashMap;
use sais_mem::{AddrAlloc, AddrRange, MemorySystem};
use sais_net::{
    simulate_transfer, CoalesceParams, EthernetFrame, FlowId, NicBond, PipeFaults, PodFrame,
    SegmentPlan,
};
use sais_obs::{FlightRecorder, MetricRegistry, MetricSnapshot, SpanId, Stage, StageHistograms};
use sais_pvfs::{HintList, IoServer, MetadataServer, ReadTracker, StripeLayout};
use sais_sim::{Model, RateResource, Scheduler, SimDuration, SimRng, SimTime, TraceRing};

/// Synthetic `tid` base for per-process request lanes in exported traces
/// (core tracks use the core index directly; `validate()` caps cores at 32,
/// so the lanes can never collide).
const REQ_LANE: u32 = 100;

/// The event alphabet of the cluster model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// Kick-off: open files and start every process.
    Start,
    /// Process `proc` on client `client` issues its next read.
    Issue {
        /// Client node index.
        client: u32,
        /// Process index within the client.
        proc: u32,
    },
    /// A strip's response stream reaches the client NIC.
    StripAtNic {
        /// Dense handle into the strip slab.
        strip: SlabRef,
    },
    /// The NIC raises a coalesced interrupt for part of a strip.
    HardIrq {
        /// Dense handle into the strip slab.
        strip: SlabRef,
        /// Frames covered by this interrupt.
        frames: u64,
        /// Payload bytes covered.
        bytes: u64,
    },
    /// Softirq processing of one batch finished on the handler core.
    BatchReady {
        /// Dense handle into the strip slab.
        strip: SlabRef,
    },
    /// The strip has been copied into the application buffer.
    StripCopied {
        /// Dense handle into the strip slab.
        strip: SlabRef,
    },
    /// A write acknowledgement for one strip reached the client.
    WriteAck {
        /// Dense handle into the strip slab.
        strip: SlabRef,
    },
    /// The application's compute phase over one read finished.
    ComputeDone {
        /// Client node index.
        client: u32,
        /// Process index within the client.
        proc: u32,
    },
}

/// Per-process runtime state.
struct ProcRt {
    proc: Process,
    user_buf: AddrRange,
    next_offset: u64,
    end_offset: u64,
}

/// Per-read bookkeeping. Lives in a [`Slab`]; events reach it through a
/// [`SlabRef`] carried by the strip state.
struct ReadState {
    /// Monotonic instance id — the key the [`ReadTracker`], flight
    /// recorder and debug oracle still speak.
    id: u64,
    proc: u32,
    bytes: u64,
    issued: SimTime,
    /// Flight-recorder span covering the whole request (`NONE` when
    /// recording is off).
    span: SpanId,
    /// Whether the request's first hardirq has been attributed (for the
    /// `IssueToFirstIrq` stage).
    first_irq_seen: bool,
}

/// Per-strip bookkeeping. Lives in a [`Slab`]; every strip event carries
/// the [`SlabRef`], so the hot path resolves state with one indexed load
/// instead of a hash probe.
struct StripState {
    /// Monotonic instance id (trace ring, frame ident, debug oracle).
    id: u64,
    client: u32,
    /// Handle to the owning read's [`ReadState`].
    read: SlabRef,
    strip_no: u64,
    bytes: u64,
    kbuf: AddrRange,
    user_range: AddrRange,
    /// The strip's segmentation, resolved once at issue time so the NIC
    /// arrival path never consults the plan cache.
    plan: SegmentPlan,
    /// The strip's first wire frame as plain old data; the exact bytes are
    /// materialized on demand (fault injection, verification) only.
    pod: PodFrame,
    flow: FlowId,
    /// Interrupt fan-in completion state, armed when the strip reaches the
    /// NIC and its batch schedule is fixed. The exactly-once completion
    /// edge lives in [`protocol::BatchProgress`], shared with the model
    /// checker.
    progress: protocol::BatchProgress,
    chunk_off: u64,
    /// Flight-recorder span covering this strip's fan-out lifetime.
    span: SpanId,
}

/// Debug-build oracle for slab-indexed state: mirrors every live slab
/// entry in the old id-keyed hash map and asserts, at each hot-path
/// lookup, that the dense ref and the map agree. Compiles to a zero-sized
/// no-op in release builds, so the hot path keeps zero hashing.
struct SlabOracle {
    #[cfg(debug_assertions)]
    by_id: FxHashMap<u64, SlabRef>,
}

impl SlabOracle {
    fn new() -> Self {
        SlabOracle {
            #[cfg(debug_assertions)]
            by_id: FxHashMap::default(),
        }
    }

    #[inline]
    fn insert(&mut self, _id: u64, _r: SlabRef) {
        #[cfg(debug_assertions)]
        assert!(
            self.by_id.insert(_id, _r).is_none(),
            "slab oracle: duplicate id {_id}"
        );
    }

    /// Assert that resolving `_id` through the map lands on `_r`.
    #[inline]
    fn check(&self, _id: u64, _r: SlabRef) {
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.by_id.get(&_id),
            Some(&_r),
            "slab/map divergence for id {_id}"
        );
    }

    #[inline]
    fn remove(&mut self, _id: u64, _r: SlabRef) {
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.by_id.remove(&_id),
            Some(_r),
            "slab oracle: removing unknown id {_id}"
        );
    }
}

/// One client node: cores, caches, NIC, APIC, SAIs components, processes.
pub struct ClientNode {
    /// The node's cores.
    pub cores: Vec<CpuCore>,
    loads: LoadTracker,
    /// The node's cache hierarchy.
    pub mem: MemorySystem,
    alloc: AddrAlloc,
    nic: NicBond,
    nic_tx: RateResource,
    /// The node's I/O APIC (with per-core LAPIC stats).
    pub ioapic: IoApic,
    composer: IMComposer,
    /// The NIC driver's source parser.
    pub parser: SrcParser,
    messager: HintMessager,
    procs: Vec<ProcRt>,
    tracker: ReadTracker,
    place: WakePlacement,
    active_procs: usize,
    bytes_done: u64,
    strips_done: u64,
    migrated_strips: u64,
    fcs_drops: u64,
    /// Debug/causality trace (disabled unless `trace_capacity > 0`).
    pub trace: TraceRing,
    latency: sais_metrics::Histogram,
    t_done: SimTime,
    ip: u32,
    /// Per-server RSS flow ids, precomputed once: the Toeplitz hash is a
    /// pure function of (server_ip, client_ip, fixed ports), so there is
    /// no reason to rehash per strip.
    flows: Vec<FlowId>,
}

/// The whole simulated deployment.
pub struct Cluster {
    cfg: ScenarioConfig,
    /// Client nodes.
    pub clients: Vec<ClientNode>,
    servers: Vec<IoServer>,
    meta: MetadataServer,
    capsuler: HintCapsuler,
    layout: StripeLayout,
    rng: SimRng,
    /// In-flight reads, slab-indexed (see [`ReadState`]).
    reads: Slab<ReadState>,
    /// In-flight strips, slab-indexed (see [`StripState`]).
    strips: Slab<StripState>,
    read_oracle: SlabOracle,
    strip_oracle: SlabOracle,
    /// Memoized segmentation plans keyed by (strip bytes, hinted): strips
    /// are near-uniform in size, so the float math in
    /// `SegmentPlan::streaming` runs a handful of times per run instead of
    /// once per strip (the NIC-arrival side reads the plan straight from
    /// [`StripState::plan`]).
    plan_cache: FxHashMap<(u64, bool), SegmentPlan>,
    next_read: u64,
    next_strip: u64,
    /// The fault stream: seeded from `cfg.faults.seed`, never from the
    /// simulation seed, and drawn from **only** when a fault probability is
    /// nonzero — so `FaultPlan::none()` leaves the clean path bit-identical.
    fault_rng: SimRng,
    /// Memoized clean-pipe TCP transfer times keyed by segment count, the
    /// baseline the faulty transport's excess delay is measured against.
    lossless_tcp: FxHashMap<u64, SimDuration>,
    retransmits: u64,
    tcp_timeouts: u64,
    tcp_duplicates: u64,
    delayed_irqs: u64,
    coalesced_merges: u64,
    stripped_options: u64,
    requests_completed: u64,
    clients_done: usize,
    t_last_done: SimTime,
    /// End-to-end span recorder (disabled unless `cfg.obs.spans`). Lives on
    /// the cluster, not per client: `pid` distinguishes clients in exports.
    recorder: FlightRecorder,
    /// Per-stage latency histograms (disabled unless `cfg.obs.stages`).
    stages: StageHistograms,
    /// Windowed time-series sampler (disabled unless `cfg.obs.timeseries`;
    /// the disabled state owns no heap and costs one branch per hook).
    telemetry: TelemetrySampler,
}

impl Cluster {
    /// Build the deployment described by `cfg`.
    pub fn new(cfg: ScenarioConfig) -> Self {
        assert!(cfg.clients >= 1 && cfg.procs_per_client >= 1 && cfg.servers >= 1);
        assert!(cfg.transfer_size > 0 && cfg.file_size >= cfg.transfer_size);
        let mut rng = SimRng::new(cfg.seed);
        let layout = StripeLayout::new(cfg.strip_size, cfg.servers);
        let mut servers: Vec<IoServer> = (0..cfg.servers)
            .map(|i| IoServer::new(i, cfg.server.clone(), rng.split(i as u64 + 1)))
            .collect();
        for &(idx, factor) in &cfg.faults.stragglers {
            servers[idx].set_slowdown(factor);
        }
        let mut meta = MetadataServer::new(layout);
        meta.create("/ior.dat", cfg.file_size);
        let clients = (0..cfg.clients)
            .map(|c| ClientNode::new(&cfg, c as u32))
            .collect();
        let mut recorder = if cfg.obs.spans {
            FlightRecorder::enabled(cfg.obs.span_capacity)
        } else {
            FlightRecorder::disabled()
        };
        if recorder.is_enabled() {
            for c in 0..cfg.clients as u32 {
                for core in 0..cfg.cpu.cores as u32 {
                    recorder.name_track(c, core, format!("core {core}"));
                }
                for p in 0..cfg.procs_per_client as u32 {
                    recorder.name_track(c, REQ_LANE + p, format!("proc {p} requests"));
                }
            }
        }
        let stages = if cfg.obs.stages {
            StageHistograms::enabled()
        } else {
            StageHistograms::disabled()
        };
        let fault_rng = SimRng::new(cfg.faults.seed);
        let telemetry = if cfg.obs.timeseries {
            TelemetrySampler::enabled(cfg.obs.window_ns, cfg.obs.window_capacity)
        } else {
            TelemetrySampler::disabled()
        };
        Cluster {
            cfg,
            clients,
            servers,
            meta,
            capsuler: HintCapsuler::new(),
            layout,
            rng,
            reads: Slab::with_capacity(64),
            strips: Slab::with_capacity(256),
            read_oracle: SlabOracle::new(),
            strip_oracle: SlabOracle::new(),
            plan_cache: FxHashMap::default(),
            next_read: 0,
            next_strip: 0,
            fault_rng,
            lossless_tcp: FxHashMap::default(),
            retransmits: 0,
            tcp_timeouts: 0,
            tcp_duplicates: 0,
            delayed_irqs: 0,
            coalesced_merges: 0,
            stripped_options: 0,
            requests_completed: 0,
            clients_done: 0,
            t_last_done: SimTime::ZERO,
            recorder,
            stages,
            telemetry,
        }
    }

    /// The run's flight recorder (empty/disabled unless `obs.spans`).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The run's stage histograms (disabled unless `obs.stages`).
    pub fn stages(&self) -> &StageHistograms {
        &self.stages
    }

    /// The run's windowed telemetry sampler (disabled unless
    /// `obs.timeseries`).
    pub fn telemetry(&self) -> &TelemetrySampler {
        &self.telemetry
    }

    /// Cluster-wide cumulative totals the telemetry sweep attributes to
    /// closing windows: `(degrades, repromotes, fault events, currently
    /// degraded flows)`.
    fn telemetry_totals(&self) -> (u64, u64, u64, u64) {
        let mut degrades = 0;
        let mut repromotes = 0;
        let mut degraded = 0;
        let mut parse_errors = 0;
        let mut fcs_drops = 0;
        for cl in &self.clients {
            let (d, r) = cl.composer.policy().steering_churn();
            degrades += d;
            repromotes += r;
            degraded += cl.composer.policy().degraded_flows();
            parse_errors += cl.parser.parse_errors.get();
            fcs_drops += cl.fcs_drops;
        }
        let faults = self.retransmits
            + self.tcp_timeouts
            + self.tcp_duplicates
            + self.delayed_irqs
            + self.coalesced_merges
            + self.stripped_options
            + parse_errors
            + fcs_drops;
        (degrades, repromotes, faults, degraded)
    }

    /// Close telemetry windows `now` has moved past (no-op unless the
    /// sampler is on and the virtual clock crossed a window boundary).
    fn telemetry_rotate(&mut self, now: SimTime) {
        if !self.telemetry.needs_rotation(now.as_nanos()) {
            return;
        }
        let (degrades, repromotes, faults, degraded) = self.telemetry_totals();
        self.telemetry
            .rotate(now.as_nanos(), degrades, repromotes, faults, degraded);
    }

    /// Close the final telemetry window with the end-of-run totals. Call
    /// once after the engine quiesces, before [`Cluster::collect_metrics`].
    pub fn finish_telemetry(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let (degrades, repromotes, faults, degraded) = self.telemetry_totals();
        self.telemetry
            .finish(degrades, repromotes, faults, degraded);
    }

    /// Whether the configured policy carries the SAIs hint end-to-end.
    fn carries_hint(&self, client: usize) -> bool {
        self.clients[client].composer.policy().uses_hint()
    }

    fn segment_plan(&mut self, bytes: u64, hinted: bool) -> SegmentPlan {
        // Strips ride long-lived TCP streams, so per-packet overhead
        // amortizes fractionally (the SAIs option costs ~0.27 % wire bytes,
        // never a whole extra packet).
        let mtu = self.cfg.mtu;
        *self
            .plan_cache
            .entry((bytes, hinted))
            .or_insert_with(|| SegmentPlan::streaming(bytes, mtu, if hinted { 4 } else { 0 }))
    }

    /// First-packet cut-through delay from a server into the client NIC.
    fn cut_through(&self, plan: SegmentPlan) -> SimDuration {
        let first_pkt = plan.wire_bytes.min(self.cfg.mtu + sais_net::ETH_OVERHEAD);
        SimDuration::for_bytes(first_pkt, self.cfg.server.uplink_bps / 8.0)
            + self.cfg.server.propagation
    }

    /// Extra delay a faulty transport costs one strip's response stream.
    ///
    /// The strip's segments are driven through the NewReno sender/receiver
    /// pair ([`simulate_transfer`]) over the perturbed pipe; the excess
    /// over the memoized clean-pipe time shifts the strip's arrival at the
    /// NIC, and the recovery work lands in the run's `retransmits` /
    /// `tcp_timeouts` / `tcp_duplicates` counters. With a clean plan this
    /// draws nothing and returns zero.
    fn transport_excess(&mut self, segments: u64) -> SimDuration {
        let f = &self.cfg.faults;
        if !f.perturbs_transport() {
            return SimDuration::ZERO;
        }
        let pipe = PipeFaults {
            loss: f.loss,
            duplication: f.duplication,
            reorder: f.reorder,
            reorder_delay: f.reorder_delay,
        };
        let rtt = self.cfg.request_net_delay;
        let rto = self.cfg.retransmit_timeout;
        let clean = *self.lossless_tcp.entry(segments).or_insert_with(|| {
            // A clean pipe draws nothing, so this RNG is inert.
            simulate_transfer(
                segments,
                rtt,
                rto,
                &PipeFaults::clean(),
                &mut SimRng::new(0),
            )
            .elapsed
        });
        let rep = simulate_transfer(segments, rtt, rto, &pipe, &mut self.fault_rng);
        self.retransmits += rep.retransmits;
        self.tcp_timeouts += rep.timeouts;
        self.tcp_duplicates += rep.duplicates;
        rep.elapsed.saturating_sub(clean)
    }

    fn handle_start(&mut self, sched: &mut Scheduler<'_, Ev>) {
        for c in 0..self.clients.len() {
            let (_, _, _, ready) = self
                .meta
                .open(sched.now(), "/ior.dat")
                .expect("benchmark file exists");
            for p in 0..self.cfg.procs_per_client {
                // Tiny stagger breaks pathological lockstep between
                // processes, like real exec skew does.
                let stagger = SimDuration::from_micros(p as u64);
                sched.at(
                    ready + stagger,
                    Ev::Issue {
                        client: c as u32,
                        proc: p as u32,
                    },
                );
            }
        }
    }

    fn handle_issue(&mut self, client: u32, proc: u32, sched: &mut Scheduler<'_, Ev>) {
        if self.cfg.direction == IoDirection::Write {
            return self.handle_issue_write(client, proc, sched);
        }
        let now = sched.now();
        let carries = self.carries_hint(client as usize);
        let cl = &mut self.clients[client as usize];
        let pr = &mut cl.procs[proc as usize];
        let core = pr.proc.core;
        let t_req = cl.cores[core].run(now, self.cfg.issue_cost, WorkClass::Sched);
        let hints = if carries {
            cl.messager.tag_request(core)
        } else {
            HintList::new()
        };
        let transfer = self.cfg.transfer_size.min(pr.end_offset - pr.next_offset);
        let strip_reqs = self.layout.split(pr.next_offset, transfer);
        let read_id = self.next_read;
        self.next_read += 1;
        cl.tracker.start(read_id, strip_reqs.len() as u64, transfer);
        let read_span = self.recorder.begin(
            t_req,
            "read",
            "request",
            client,
            REQ_LANE + proc,
            SpanId::NONE,
        );
        self.recorder.set_arg(read_span, "read_id", read_id);
        self.recorder.set_arg(read_span, "bytes", transfer);
        self.recorder
            .set_arg(read_span, "strips", strip_reqs.len() as u64);
        let read_ref = self.reads.insert(ReadState {
            id: read_id,
            proc,
            bytes: transfer,
            issued: t_req,
            span: read_span,
            first_irq_seen: false,
        });
        self.read_oracle.insert(read_id, read_ref);
        pr.proc.block(t_req);
        // The paper's policy (i)-vs-(ii) distinction: the process may be
        // migrated by the OS *while blocked*, after the request (and its
        // hint) already left. SAIs normally prevents this by bundling
        // (`pin_processes`); the ablation turns it on.
        if !pr.proc.pinned
            && self.cfg.cpu.block_migration_prob > 0.0
            && self.rng.chance(self.cfg.cpu.block_migration_prob)
        {
            let n = self.cfg.cpu.cores as u64;
            let mut target = self.rng.next_below(n) as usize;
            if target == pr.proc.core {
                target = (target + 1) % n as usize;
            }
            pr.proc.core = target;
            pr.proc.migrations += 1;
        }
        let client_ip = cl.ip;
        let user_base = pr.user_buf.start;
        let mut user_off = 0u64;
        for (i, sr) in strip_reqs.iter().enumerate() {
            let plan = self.segment_plan(sr.bytes, carries);
            let t_at_server = t_req + self.cfg.request_net_delay;
            let tx = self.servers[sr.server].serve_strip(t_at_server, sr.bytes, plan.wire_bytes);
            let server_ip = 0x0A01_0000 + sr.server as u32;
            let strip_id = self.next_strip;
            self.next_strip += 1;
            // The response's first wire frame as plain old data. The byte
            // path (Ethernet II + FCS around the possibly option-carrying
            // IP header) is materialized only where bytes are inspected;
            // `capsule_pod` keeps the server-side stamping counters exactly
            // as the byte path would.
            let pod = PodFrame {
                src_ip: server_ip,
                dst_ip: client_ip,
                ident: (strip_id & 0xFFFF) as u16,
                payload_len: sr.bytes.min(plan.mss) as u16,
                aff_core: self.capsuler.capsule_pod(&hints),
            };
            // One TCP connection per (client, server) pair, as PVFS does;
            // the flow id is the NIC's actual RSS (Toeplitz) hash of it,
            // precomputed per server in `ClientNode::new`.
            let flow = self.clients[client as usize].flows[sr.server];
            let strip_span =
                self.recorder
                    .begin(t_req, "strip", "strip", client, REQ_LANE + proc, read_span);
            self.recorder.set_arg(strip_span, "bytes", sr.bytes);
            self.recorder
                .set_arg(strip_span, "server", sr.server as u64);
            let strip_ref = self.strips.insert(StripState {
                id: strip_id,
                client,
                read: read_ref,
                strip_no: i as u64,
                bytes: sr.bytes,
                kbuf: AddrRange::EMPTY,
                user_range: AddrRange::new(user_base + user_off, sr.bytes),
                plan,
                pod,
                flow,
                progress: protocol::BatchProgress::unarmed(),
                chunk_off: 0,
                span: strip_span,
            });
            self.strip_oracle.insert(strip_id, strip_ref);
            user_off += sr.bytes;
            // Transport faults delay the whole response stream: the strip
            // reaches the NIC later by however long NewReno recovery took
            // over and above the clean pipe.
            let arrive = tx.start + self.cut_through(plan) + self.transport_excess(plan.packets);
            sched.at(arrive, Ev::StripAtNic { strip: strip_ref });
        }
    }

    fn handle_strip_at_nic(&mut self, strip: SlabRef, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        let s = &mut self.strips[strip];
        self.strip_oracle.check(s.id, strip);
        // The plan was resolved at issue time; no cache probe here.
        let plan = s.plan;
        let cl = &mut self.clients[s.client as usize];
        s.kbuf = cl.alloc.alloc(s.bytes);
        let mut batches = cl.nic.receive_strip(
            now,
            s.flow,
            plan,
            CoalesceParams {
                max_frames: self.cfg.coalesce_frames,
            },
        );
        // Interrupt-layer faults rewrite the batch schedule the NIC
        // produced, through the same pure rewrites the model checker
        // enumerates ([`protocol::coalesce_batches`] merges a batch's
        // frames into its successor, [`protocol::delay_batches`] posts
        // some batches late, which can reorder them against their
        // neighbours). Both consult the decision closure in index order —
        // that order is the fault-RNG draw-order contract that keeps
        // seeded figure runs byte-identical.
        if self.cfg.faults.perturbs_interrupts() {
            let f = self.cfg.faults.clone();
            if f.irq_coalesce > 0.0 && batches.len() > 1 {
                let (merged, merges) =
                    protocol::coalesce_batches(&batches, |_| self.fault_rng.chance(f.irq_coalesce));
                self.coalesced_merges += merges;
                batches = merged;
            }
            if f.irq_delay > 0.0 {
                self.delayed_irqs += protocol::delay_batches(&mut batches, f.irq_delay_by, |_| {
                    self.fault_rng.chance(f.irq_delay)
                });
            }
        }
        s.progress = protocol::BatchProgress::arm(batches.len() as u64);
        for b in &batches {
            sched.at(
                b.time,
                Ev::HardIrq {
                    strip,
                    frames: b.frames,
                    bytes: b.bytes,
                },
            );
        }
    }

    fn handle_hard_irq(
        &mut self,
        strip: SlabRef,
        frames: u64,
        bytes: u64,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        let now = sched.now();
        self.telemetry_rotate(now);
        // In-flight strip count before this batch is consumed — the
        // telemetry plane's queue-depth signal.
        let queue_depth = self.strips.len() as u64;
        let s = &mut self.strips[strip];
        self.strip_oracle.check(s.id, strip);
        let cl = &mut self.clients[s.client as usize];
        cl.loads.maybe_sample(now, &cl.cores);
        // An option-stripping middlebox (fault injection) rewrites the IP
        // header in flight, removing the SAIs option. It is stateless and
        // per-flow: the same flow is either always clean or always
        // stripped — until the plan's decommission time, if any, after
        // which its flows run clean and SAIs must re-promote them.
        let stripped =
            self.cfg.faults.strips_flow_at(s.flow.value(), now) && s.pod.aff_core.is_some();
        if stripped {
            self.stripped_options += 1;
        }
        let pod = if stripped {
            PodFrame {
                aff_core: None,
                ..s.pod
            }
        } else {
            s.pod
        };
        // The receive path is byte-faithful per interrupt batch: the NIC
        // verifies the Ethernet FCS, and only then does SrcParser see the
        // IP header. Injected corruption flips a random bit of the wire
        // frame; most flips die at the FCS, the rest at the IP checksum.
        let hint = if self.cfg.faults.corruption > 0.0
            && self.fault_rng.chance(self.cfg.faults.corruption)
        {
            if self.fault_rng.chance(0.5) {
                // Wire corruption: a bit flips in flight. CRC-32 catches
                // every single-bit error, so the NIC drops the frame. The
                // wire bytes are materialized here because corruption
                // genuinely edits them (byte-identical to the frame the
                // slow path used to store, so the RNG draw below sees the
                // same length).
                let mut corrupted = pod.materialize();
                let idx = (self.fault_rng.next_below(corrupted.len() as u64)) as usize;
                corrupted[idx] ^= 1 << self.fault_rng.next_below(8);
                match EthernetFrame::decode(&corrupted) {
                    Ok(frame) => cl.parser.parse(&frame.payload),
                    Err(_) => {
                        cl.fcs_drops += 1;
                        None
                    }
                }
            } else {
                // Post-FCS corruption (DMA/buffer damage): the frame check
                // passed, so SrcParser's own IP-checksum validation is the
                // last line of defence.
                let frame = EthernetFrame::decode(&pod.materialize()).expect("stored frame valid");
                let mut payload = frame.payload;
                let idx = (self.fault_rng.next_below(payload.len() as u64)) as usize;
                payload[idx] ^= 1 << self.fault_rng.next_below(8);
                cl.parser.parse(&payload)
            }
        } else if stripped {
            // The middlebox genuinely rewrote the header, so SrcParser
            // must see the bytes it left behind: a valid option-free
            // header that parses cleanly but yields no hint.
            cl.parser.parse(&pod.header().encode())
        } else {
            // Zero-copy fast path: an uncorrupted frame the simulation
            // built itself always passes the FCS and IP checksum, so
            // `SrcParser` reads the hint straight from the POD. The POD ⇄
            // byte equivalence is pinned by property tests in `sais-net`.
            cl.parser.parse_pod(&s.pod)
        };
        // The interrupt arrives on the IRQ line of the bond port the flow
        // hashes to.
        let pin = (s.flow.value() % self.cfg.nic_ports.max(1) as u64) as usize;
        let dest = cl.composer.compose(
            &mut cl.ioapic,
            pin,
            now,
            hint,
            s.flow.value(),
            &cl.cores,
            &cl.loads,
        );
        // Hardirq entry, then softirq: per-packet protocol work plus the
        // payload fill into the handler core's cache.
        let chunk = AddrRange::new(s.kbuf.start + s.chunk_off, bytes);
        s.chunk_off += bytes;
        let counts = cl.mem.touch(dest, chunk);
        cl.mem
            .note_background(dest, counts.lines * self.cfg.background_accesses_per_line);
        cl.trace.emit(now, "irq", s.id, dest as u64);
        cl.cores[dest].run(now, self.cfg.cpu.hardirq, WorkClass::HardIrq);
        let soft = self.cfg.cpu.softirq_per_packet * frames + counts.cost(cl.mem.params());
        let done = cl.cores[dest].run(now, soft, WorkClass::SoftIrq);
        let irq_span = self
            .recorder
            .begin(now, "irq", "interrupt", s.client, dest as u32, s.span);
        self.recorder.set_arg(irq_span, "frames", frames);
        self.recorder.set_arg(irq_span, "bytes", bytes);
        // Service time (hardirq entry + softirq work) excluding queue wait,
        // so trace analysis can split the span into queueing vs handling.
        self.recorder
            .set_arg(irq_span, "svc", (self.cfg.cpu.hardirq + soft).as_nanos());
        self.recorder.end(irq_span, done);
        self.stages.record(Stage::IrqToHandler, done.since(now));
        self.telemetry.record_irq(now.as_nanos(), dest, queue_depth);
        if let Some(read) = self.reads.get_mut(s.read) {
            if !read.first_irq_seen {
                read.first_irq_seen = true;
                self.stages
                    .record(Stage::IssueToFirstIrq, now.since(read.issued));
            }
        }
        sched.at(done, Ev::BatchReady { strip });
    }

    fn handle_batch_ready(&mut self, strip: SlabRef, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        let s = &mut self.strips[strip];
        self.strip_oracle.check(s.id, strip);
        match s.progress.batch_ready() {
            protocol::Ready::Pending => return,
            protocol::Ready::Complete => {}
            // A ready past completion can only come from a duplicated
            // interrupt; the DES scheduler never produces one today, but
            // the exactly-once guard (not a `done < total` fall-through)
            // is what keeps a duplicate from double-copying the strip —
            // the model checker proves exactly that (see
            // `sais_core::protocol` and tests/mck_regressions.rs).
            protocol::Ready::Spurious => {
                debug_assert!(false, "spurious BatchReady for completed strip");
                return;
            }
        }
        // Strip complete in kernel memory: the blocked process is made
        // runnable and copies it to the user buffer on its own core.
        let read = &self.reads[s.read];
        let cl = &mut self.clients[s.client as usize];
        let consumer = cl.procs[read.proc as usize].proc.core;
        let src = cl.mem.touch(consumer, s.kbuf);
        let dst = cl.mem.touch(consumer, s.user_range);
        cl.mem.note_background(
            consumer,
            (src.lines + dst.lines) * self.cfg.background_accesses_per_line,
        );
        if src.c2c > 0 {
            cl.migrated_strips += 1;
        }
        let p = cl.mem.params();
        let stall = p.c2c_time(src.c2c);
        let dur = self.cfg.cpu.wake_ipi + self.cfg.cpu.context_switch + src.cost(p) + dst.cost(p);
        cl.trace.emit(now, "copy", s.id, consumer as u64);
        let done = cl.cores[consumer].run(now, dur, WorkClass::Copy);
        let copy_span =
            self.recorder
                .begin(now, "copy", "consume", s.client, consumer as u32, s.span);
        self.recorder.set_arg(copy_span, "c2c_lines", src.c2c);
        // Service time and the cache-to-cache stall share of it, so trace
        // analysis can blame queueing vs migration stall vs copy work.
        self.recorder.set_arg(copy_span, "svc", dur.as_nanos());
        self.recorder.set_arg(copy_span, "stall", stall.as_nanos());
        self.recorder.end(copy_span, done);
        self.stages.record(Stage::HandlerToConsume, done.since(now));
        self.stages.record(Stage::MigrationStall, stall);
        sched.at(done, Ev::StripCopied { strip });
    }

    fn handle_strip_copied(&mut self, strip: SlabRef, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        self.telemetry_rotate(now);
        let s = self.strips.remove(strip);
        self.strip_oracle.remove(s.id, strip);
        self.recorder.end(s.span, now);
        let read_id = self.reads[s.read].id;
        let cl = &mut self.clients[s.client as usize];
        cl.strips_done += 1;
        let complete = cl.tracker.strip_arrived(read_id, s.strip_no, s.bytes);
        if !complete {
            return;
        }
        let read = self.reads.remove(s.read);
        self.read_oracle.remove(read.id, s.read);
        self.recorder.end(read.span, now);
        self.recorder
            .instant(now, "request_done", s.client, REQ_LANE + read.proc, read.id);
        self.stages
            .record(Stage::RequestTotal, now.since(read.issued));
        cl.latency.record(now.since(read.issued).as_nanos());
        self.telemetry
            .record_latency(now.as_nanos(), now.since(read.issued).as_nanos());
        let pr = &mut cl.procs[read.proc as usize];
        // read() returns: wake (possibly migrating, for the ablation), then
        // run the compute phase over the freshly-read buffer.
        let core = cl.place.wake(&mut pr.proc, now, &mut self.rng);
        let buf = AddrRange::new(pr.user_buf.start, read.bytes);
        let counts = cl.mem.touch(core, buf);
        cl.mem
            .note_background(core, counts.lines * self.cfg.background_accesses_per_line);
        let cycles = (self.cfg.compute_cycles_per_byte * read.bytes as f64) as u64;
        let dur = self.cfg.cpu.cycles(cycles) + counts.cost(cl.mem.params());
        let done = cl.cores[core].run(now, dur, WorkClass::App);
        sched.at(
            done,
            Ev::ComputeDone {
                client: s.client,
                proc: read.proc,
            },
        );
    }

    fn handle_compute_done(&mut self, client: u32, proc: u32, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        self.requests_completed += 1;
        let cl = &mut self.clients[client as usize];
        let pr = &mut cl.procs[proc as usize];
        let transfer = self.cfg.transfer_size.min(pr.end_offset - pr.next_offset);
        pr.next_offset += transfer;
        pr.proc.requests_done += 1;
        pr.proc.bytes_read += transfer;
        cl.bytes_done += transfer;
        if pr.next_offset < pr.end_offset {
            sched.now_event(Ev::Issue { client, proc });
        } else {
            cl.active_procs -= 1;
            if cl.active_procs == 0 {
                cl.t_done = now;
                self.clients_done += 1;
                if now > self.t_last_done {
                    self.t_last_done = now;
                }
            }
        }
    }

    /// Issue one IOR *write*: generate+encrypt the buffer, copy it to
    /// kernel memory, stream the strips to the servers, then wait for the
    /// per-strip acknowledgements. No bulk data ever flows client-bound,
    /// so interrupt placement has (almost) nothing to steer.
    fn handle_issue_write(&mut self, client: u32, proc: u32, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        let mtu = self.cfg.mtu;
        let cl = &mut self.clients[client as usize];
        let pr = &mut cl.procs[proc as usize];
        let core = pr.proc.core;
        let transfer = self.cfg.transfer_size.min(pr.end_offset - pr.next_offset);
        // Generate + encrypt the outgoing buffer (the compute phase runs
        // before a write, not after).
        let buf = AddrRange::new(pr.user_buf.start, transfer);
        let counts = cl.mem.touch(core, buf);
        cl.mem
            .note_background(core, counts.lines * self.cfg.background_accesses_per_line);
        let cycles = (self.cfg.compute_cycles_per_byte * transfer as f64) as u64;
        let gen = self.cfg.issue_cost + self.cfg.cpu.cycles(cycles) + counts.cost(cl.mem.params());
        let t0 = cl.cores[core].run(now, gen, WorkClass::App);
        let strip_reqs = self.layout.split(pr.next_offset, transfer);
        let read_id = self.next_read;
        self.next_read += 1;
        cl.tracker.start(read_id, strip_reqs.len() as u64, transfer);
        let write_span = self.recorder.begin(
            t0,
            "write",
            "request",
            client,
            REQ_LANE + proc,
            SpanId::NONE,
        );
        self.recorder.set_arg(write_span, "read_id", read_id);
        self.recorder.set_arg(write_span, "bytes", transfer);
        let read_ref = self.reads.insert(ReadState {
            id: read_id,
            proc,
            bytes: transfer,
            issued: t0,
            span: write_span,
            first_irq_seen: false,
        });
        self.read_oracle.insert(read_id, read_ref);
        pr.proc.block(t0);
        let client_ip = cl.ip;
        let user_base = pr.user_buf.start;
        let mut user_off = 0u64;
        for (i, sr) in strip_reqs.iter().enumerate() {
            // Copy user → kernel and run the transmit-side protocol work on
            // the issuing core (writes have no placement decision to make).
            let kbuf = cl.alloc.alloc(sr.bytes);
            let cu = cl
                .mem
                .touch(core, AddrRange::new(user_base + user_off, sr.bytes));
            let ck = cl.mem.touch(core, kbuf);
            cl.mem.note_background(
                core,
                (cu.lines + ck.lines) * self.cfg.background_accesses_per_line,
            );
            user_off += sr.bytes;
            let plan = SegmentPlan::streaming(sr.bytes, mtu, 0);
            let p = cl.mem.params();
            let tx_work = self.cfg.cpu.softirq_per_packet * plan.packets + cu.cost(p) + ck.cost(p);
            let t1 = cl.cores[core].run(t0, tx_work, WorkClass::Copy);
            // Serialize onto the client's transmit bond, then cross to the
            // server, which commits the strip to storage and acks.
            let (_, tx_end) = cl.nic_tx.transfer(t1, plan.wire_bytes);
            let t_srv = tx_end + self.cfg.request_net_delay;
            const ACK_WIRE_BYTES: u64 = 90; // TCP ack + PVFS write response
            let tx = self.servers[sr.server].serve_strip(t_srv, sr.bytes, ACK_WIRE_BYTES);
            let server_ip = 0x0A01_0000 + sr.server as u32;
            let flow = cl.flows[sr.server];
            let strip_id = self.next_strip;
            self.next_strip += 1;
            let strip_ref = self.strips.insert(StripState {
                id: strip_id,
                client,
                read: read_ref,
                strip_no: i as u64,
                bytes: sr.bytes,
                kbuf,
                user_range: AddrRange::EMPTY,
                plan,
                // Acks carry no payload frame worth modelling; the POD
                // is never read on the write path.
                pod: PodFrame {
                    src_ip: server_ip,
                    dst_ip: client_ip,
                    ident: 0,
                    payload_len: 0,
                    aff_core: None,
                },
                flow,
                progress: protocol::BatchProgress::unarmed(),
                chunk_off: 0,
                // Ack interrupts are not worth a span of their own; the
                // write request span covers issue → last ack.
                span: SpanId::NONE,
            });
            self.strip_oracle.insert(strip_id, strip_ref);
            sched.at(
                tx.end + self.cfg.server.propagation,
                Ev::WriteAck { strip: strip_ref },
            );
        }
    }

    /// A write acknowledgement arrives: one tiny interrupt, no payload.
    fn handle_write_ack(&mut self, strip: SlabRef, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        let s = self.strips.remove(strip);
        self.strip_oracle.remove(s.id, strip);
        let cl = &mut self.clients[s.client as usize];
        cl.loads.maybe_sample(now, &cl.cores);
        // Acks carry no SAIs option (there is no consumer to steer toward);
        // the policy routes them like any other interrupt.
        let pin = (s.flow.value() % self.cfg.nic_ports.max(1) as u64) as usize;
        let dest = cl.composer.compose(
            &mut cl.ioapic,
            pin,
            now,
            None,
            s.flow.value(),
            &cl.cores,
            &cl.loads,
        );
        cl.cores[dest].run(now, self.cfg.cpu.hardirq, WorkClass::HardIrq);
        let done = cl.cores[dest].run(now, self.cfg.cpu.softirq_per_packet, WorkClass::SoftIrq);
        cl.strips_done += 1;
        let read_id = self.reads[s.read].id;
        let complete = cl.tracker.strip_arrived(read_id, s.strip_no, s.bytes);
        if complete {
            let read = self.reads.remove(s.read);
            self.read_oracle.remove(read.id, s.read);
            self.recorder.end(read.span, now);
            self.stages
                .record(Stage::RequestTotal, now.since(read.issued));
            cl.latency.record(now.since(read.issued).as_nanos());
            let pr = &mut cl.procs[read.proc as usize];
            cl.place.wake(&mut pr.proc, now, &mut self.rng);
            sched.at(
                done,
                Ev::ComputeDone {
                    client: s.client,
                    proc: read.proc,
                },
            );
        }
    }

    /// Assemble the run metrics at time `now` (normally quiescence).
    pub fn collect_metrics(&self, now: SimTime) -> RunMetrics {
        assert_eq!(
            self.clients_done,
            self.clients.len(),
            "collect_metrics before the run completed"
        );
        let wall = self.t_last_done.max_of(SimTime::from_nanos(1));
        let _ = now;
        let mut l2_accesses = 0;
        let mut l2_misses = 0;
        let mut c2c_lines = 0;
        let mut strip_migrations = 0;
        let mut interrupts = 0;
        let mut hinted = 0;
        let mut clamped = 0;
        let mut parse_errors = 0;
        let mut fcs_drops = 0;
        let mut bytes = 0;
        let mut strips = 0;
        let mut unhalted = 0;
        let mut util_sum = 0.0;
        let mut util_n = 0usize;
        let mut per_client_bw = Vec::with_capacity(self.clients.len());
        let mut process_migrations = 0;
        let mut degraded_flows = 0;
        let mut steering_degrades = 0;
        let mut steering_repromotes = 0;
        let mut latency = sais_metrics::Histogram::new();
        for cl in &self.clients {
            degraded_flows += cl.composer.policy().degraded_flows();
            let (d, r) = cl.composer.policy().steering_churn();
            steering_degrades += d;
            steering_repromotes += r;
            cl.mem.debug_dump_extents();
            l2_accesses += cl.mem.total_accesses();
            l2_misses += cl.mem.total_misses();
            c2c_lines += cl.mem.c2c_transfers();
            strip_migrations += cl.migrated_strips;
            interrupts += cl.ioapic.routed.get();
            hinted += cl.composer.hinted.get();
            clamped += cl.ioapic.clamped.get();
            parse_errors += cl.parser.parse_errors.get();
            fcs_drops += cl.fcs_drops;
            bytes += cl.bytes_done;
            strips += cl.strips_done;
            let report = CpuReport::collect(&cl.cores, &self.cfg.cpu, wall);
            unhalted += report.unhalted_cycles;
            util_sum += report.utilization * cl.cores.len() as f64;
            util_n += cl.cores.len();
            let t = cl.t_done.max_of(SimTime::from_nanos(1));
            per_client_bw.push(cl.bytes_done as f64 / t.as_secs_f64());
            process_migrations += cl.procs.iter().map(|p| p.proc.migrations).sum::<u64>();
            latency.merge(&cl.latency);
        }
        RunMetrics {
            policy: self.clients[0].composer.policy().kind(),
            wall_time: wall,
            bytes_delivered: bytes,
            requests_completed: self.requests_completed,
            strips_delivered: strips,
            strip_migrations,
            c2c_lines,
            l2_miss_rate: if l2_accesses == 0 {
                0.0
            } else {
                l2_misses as f64 / l2_accesses as f64
            },
            l2_accesses,
            l2_misses,
            cpu_utilization: if util_n == 0 {
                0.0
            } else {
                util_sum / util_n as f64
            },
            unhalted_cycles: unhalted,
            interrupts,
            irq_distribution: self.clients[0].ioapic.distribution().to_vec(),
            retransmits: self.retransmits,
            tcp_timeouts: self.tcp_timeouts,
            parse_errors,
            fcs_drops,
            tcp_duplicates: self.tcp_duplicates,
            delayed_irqs: self.delayed_irqs,
            coalesced_merges: self.coalesced_merges,
            stripped_options: self.stripped_options,
            degraded_flows,
            steering_degrades,
            steering_repromotes,
            hinted_interrupts: hinted,
            clamped_interrupts: clamped,
            per_client_bw,
            process_migrations,
            request_latency: latency,
            stages: self.stages.clone(),
            strip_slab_high_water: self.strips.high_water() as u64,
            read_slab_high_water: self.reads.high_water() as u64,
            events_dispatched: 0,  // filled in by `ScenarioConfig::run_full`
            queue_high_water: 0,   // likewise
            queue_cascades: 0,     // likewise
            queue_peak_buckets: 0, // likewise
            dispatch_batches: 0,   // likewise
            dispatch_max_batch: 0, // likewise
            dispatch_batch_hist: vec![], // likewise
            telemetry: self.telemetry.series().clone(),
            window_rotations: self.telemetry.rotations(),
            detector_evals: self.telemetry.detector_evals(),
            telemetry_verdicts: self.telemetry.verdicts().to_vec(),
        }
    }

    /// Build the central metric registry from the current component state.
    ///
    /// Unlike [`Cluster::collect_metrics`] this is a pure pull pass with no
    /// completion requirement, so it can be called **mid-run** (e.g. from a
    /// bounded `run_bounded` loop) as well as at quiescence. Registration
    /// costs the hot paths nothing: components keep their plain fields and
    /// the registry reads them here.
    pub fn metric_registry(&self) -> MetricRegistry {
        let mut reg = MetricRegistry::new();
        let mut l2_accesses = 0;
        let mut l2_misses = 0;
        let mut c2c_lines = 0;
        let mut strip_migrations = 0;
        let mut interrupts = 0;
        let mut hinted = 0;
        let mut clamped = 0;
        let mut parse_errors = 0;
        let mut fcs_drops = 0;
        let mut bytes = 0;
        let mut strips = 0;
        let mut trace_recorded = 0;
        let mut trace_dropped = 0;
        let mut degraded_flows = 0;
        let mut latency = sais_metrics::Histogram::new();
        for cl in &self.clients {
            degraded_flows += cl.composer.policy().degraded_flows();
            l2_accesses += cl.mem.total_accesses();
            l2_misses += cl.mem.total_misses();
            c2c_lines += cl.mem.c2c_transfers();
            strip_migrations += cl.migrated_strips;
            interrupts += cl.ioapic.routed.get();
            hinted += cl.composer.hinted.get();
            clamped += cl.ioapic.clamped.get();
            parse_errors += cl.parser.parse_errors.get();
            fcs_drops += cl.fcs_drops;
            bytes += cl.bytes_done;
            strips += cl.strips_done;
            trace_recorded += cl.trace.recorded();
            trace_dropped += cl.trace.dropped();
            latency.merge(&cl.latency);
        }
        reg.counter("io.bytes_delivered", bytes);
        reg.counter("io.requests_completed", self.requests_completed);
        reg.counter("io.strips_delivered", strips);
        reg.counter("io.retransmits", self.retransmits);
        reg.counter("fault.tcp_timeouts", self.tcp_timeouts);
        reg.counter("fault.tcp_duplicates", self.tcp_duplicates);
        reg.counter("fault.delayed_irqs", self.delayed_irqs);
        reg.counter("fault.coalesced_merges", self.coalesced_merges);
        reg.counter("fault.stripped_options", self.stripped_options);
        reg.counter("fault.degraded_flows", degraded_flows);
        reg.counter("irq.routed", interrupts);
        reg.counter("irq.hinted", hinted);
        reg.counter("irq.clamped", clamped);
        reg.counter("net.parse_errors", parse_errors);
        reg.counter("net.fcs_drops", fcs_drops);
        reg.counter("mem.l2_accesses", l2_accesses);
        reg.counter("mem.l2_misses", l2_misses);
        reg.counter("mem.c2c_lines", c2c_lines);
        reg.counter("mem.strip_migrations", strip_migrations);
        reg.gauge(
            "mem.l2_miss_rate",
            if l2_accesses == 0 {
                0.0
            } else {
                l2_misses as f64 / l2_accesses as f64
            },
        );
        reg.counter("trace.recorded", trace_recorded);
        reg.counter("trace.dropped", trace_dropped);
        reg.counter("obs.window_rotations", self.telemetry.rotations());
        reg.counter("obs.detector_evals", self.telemetry.detector_evals());
        reg.counter("obs.spans_recorded", self.recorder.recorded());
        reg.counter("obs.spans_dropped", self.recorder.dropped());
        reg.histogram("latency.request", &latency);
        for stage in sais_obs::STAGES {
            if let Some(h) = self.stages.get(stage) {
                reg.histogram(&format!("stage.{}", stage.name()), h);
            }
        }
        reg
    }

    /// Freeze [`Cluster::metric_registry`] into an exportable snapshot
    /// stamped with sim time `now`.
    pub fn snapshot_metrics(&self, now: SimTime) -> MetricSnapshot {
        self.metric_registry().snapshot(now)
    }
}

impl ClientNode {
    fn new(cfg: &ScenarioConfig, id: u32) -> Self {
        let ncores = cfg.cpu.cores;
        let mut alloc = AddrAlloc::new(cfg.mem.line_size);
        let bytes_per_proc = cfg.bytes_per_proc();
        let procs = (0..cfg.procs_per_client)
            .map(|p| {
                let core = p % ncores;
                let user_buf = alloc.alloc(cfg.transfer_size);
                ProcRt {
                    proc: Process::new(p, core, cfg.pin_processes),
                    user_buf,
                    next_offset: p as u64 * bytes_per_proc,
                    end_offset: (p as u64 + 1) * bytes_per_proc,
                }
            })
            .collect();
        ClientNode {
            cores: (0..ncores).map(CpuCore::new).collect(),
            loads: LoadTracker::new(ncores, SimDuration::from_millis(10)),
            mem: MemorySystem::new(ncores, cfg.mem.clone()),
            alloc,
            nic: NicBond::new(
                cfg.nic_ports,
                cfg.nic_port_bps,
                SimDuration::from_micros(20),
            ),
            nic_tx: RateResource::from_bits_per_sec(cfg.nic_ports as f64 * cfg.nic_port_bps),
            ioapic: {
                let mut io = IoApic::new(cfg.nic_ports.max(1), ncores);
                if let Some(mask) = cfg.irq_affinity_mask {
                    for pin in 0..cfg.nic_ports.max(1) {
                        let mut entry = *io.table_mut().entry(pin);
                        entry.dest_mask = mask;
                        assert!(
                            entry.allowed_cores().next().is_some(),
                            "irq_affinity_mask permits no core"
                        );
                        io.table_mut().set_entry(pin, entry);
                    }
                }
                io
            },
            composer: IMComposer::new(cfg.policy.build()),
            parser: SrcParser::new(),
            messager: HintMessager::new(),
            procs,
            tracker: ReadTracker::new(),
            // Block-time migration is injected in `handle_issue` (where the
            // hint/consumer mismatch actually arises); the wake itself only
            // does blocked-time accounting.
            place: WakePlacement::new(&sais_cpu::CpuParams {
                block_migration_prob: 0.0,
                ..cfg.cpu.clone()
            }),
            active_procs: cfg.procs_per_client,
            bytes_done: 0,
            strips_done: 0,
            migrated_strips: 0,
            fcs_drops: 0,
            trace: TraceRing::new(cfg.trace_capacity),
            latency: sais_metrics::Histogram::new(),
            t_done: SimTime::ZERO,
            ip: 0x0A00_0001 + id,
            flows: (0..cfg.servers)
                .map(|s| FlowId::rss(0x0A01_0000 + s as u32, 0x0A00_0001 + id, 3334, 50_000))
                .collect(),
        }
    }
}

impl Model for Cluster {
    type Event = Ev;

    fn handle(&mut self, event: Ev, sched: &mut Scheduler<'_, Ev>) {
        // Per-stage host-profiler zones (one branch each when profiling
        // is off, bit-inert always): these are the `model.*` phase of the
        // hostprof breakdown, nested under `engine.dispatch`.
        match event {
            Ev::Start => self.handle_start(sched),
            Ev::Issue { client, proc } => {
                sais_prof::zone!("model.issue");
                self.handle_issue(client, proc, sched)
            }
            Ev::StripAtNic { strip } => {
                sais_prof::zone!("model.strip_at_nic");
                self.handle_strip_at_nic(strip, sched)
            }
            Ev::HardIrq {
                strip,
                frames,
                bytes,
            } => {
                sais_prof::zone!("model.hard_irq");
                self.handle_hard_irq(strip, frames, bytes, sched)
            }
            Ev::BatchReady { strip } => {
                sais_prof::zone!("model.batch_ready");
                self.handle_batch_ready(strip, sched)
            }
            Ev::StripCopied { strip } => {
                sais_prof::zone!("model.strip_copied");
                self.handle_strip_copied(strip, sched)
            }
            Ev::WriteAck { strip } => {
                sais_prof::zone!("model.write_ack");
                self.handle_write_ack(strip, sched)
            }
            Ev::ComputeDone { client, proc } => {
                sais_prof::zone!("model.compute_done");
                self.handle_compute_done(client, proc, sched)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{PolicyChoice, ScenarioConfig};

    fn small(policy: PolicyChoice) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::testbed_3gig(8, 512 * 1024);
        cfg.file_size = 8 * 1024 * 1024;
        cfg.policy = policy;
        cfg
    }

    #[test]
    fn conservation_of_bytes() {
        let m = small(PolicyChoice::SourceAware).run();
        assert_eq!(m.bytes_delivered, 8 * 1024 * 1024);
        assert_eq!(m.requests_completed, 16);
        assert_eq!(m.strips_delivered, 128);
        assert!(m.wall_time > SimTime::ZERO);
    }

    #[test]
    fn sais_has_zero_strip_migrations() {
        let m = small(PolicyChoice::SourceAware).run();
        assert_eq!(m.strip_migrations, 0);
        assert_eq!(m.c2c_lines, 0);
        assert_eq!(m.hinted_interrupts, m.interrupts);
        assert_eq!(m.parse_errors, 0);
    }

    #[test]
    fn irqbalance_migrates_strips() {
        let m = small(PolicyChoice::LowestLoaded).run();
        assert!(
            m.strip_migrations > 100,
            "most strips should migrate, got {}",
            m.strip_migrations
        );
        assert_eq!(m.hinted_interrupts, 0);
    }

    #[test]
    fn sais_beats_irqbalance_on_bandwidth_and_misses() {
        let s = small(PolicyChoice::SourceAware).run();
        let b = small(PolicyChoice::LowestLoaded).run();
        assert!(
            s.bandwidth_bytes_per_sec() > b.bandwidth_bytes_per_sec(),
            "SAIs {} MB/s vs irqbalance {} MB/s",
            s.bandwidth_mbs(),
            b.bandwidth_mbs()
        );
        assert!(s.l2_miss_rate < b.l2_miss_rate);
        assert!(s.unhalted_cycles < b.unhalted_cycles);
    }

    #[test]
    fn determinism_bitwise() {
        let a = small(PolicyChoice::SourceAware).run();
        let b = small(PolicyChoice::SourceAware).run();
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.l2_accesses, b.l2_accesses);
        assert_eq!(a.unhalted_cycles, b.unhalted_cycles);
        assert_eq!(a.irq_distribution, b.irq_distribution);
    }

    #[test]
    fn dedicated_core_concentrates_interrupts() {
        let m = small(PolicyChoice::Dedicated).run();
        let dist = &m.irq_distribution;
        let total: u64 = dist.iter().sum();
        assert_eq!(dist[0], total, "all interrupts on the dedicated core");
    }

    #[test]
    fn round_robin_spreads_interrupts() {
        let m = small(PolicyChoice::RoundRobin).run();
        let dist = &m.irq_distribution;
        assert!(dist.iter().all(|&d| d > 0), "{dist:?}");
    }

    #[test]
    fn loss_injection_retransmits_and_still_completes() {
        let mut cfg = small(PolicyChoice::SourceAware);
        cfg.faults.loss = 0.05;
        let m = cfg.run();
        assert!(m.retransmits > 0);
        assert_eq!(m.bytes_delivered, 8 * 1024 * 1024);
    }

    #[test]
    fn corruption_falls_back_without_panicking() {
        let mut cfg = small(PolicyChoice::SourceAware);
        cfg.faults.corruption = 0.2;
        let m = cfg.run();
        assert!(m.parse_errors > 0);
        assert!(m.hinted_interrupts < m.interrupts);
        assert_eq!(m.bytes_delivered, 8 * 1024 * 1024);
    }

    #[test]
    fn straggler_slows_but_completes() {
        let mut slow = small(PolicyChoice::SourceAware);
        // Slow enough that the straggler's strips gate every request that
        // touches server 0 (its service time exceeds the rest of the
        // request pipeline).
        slow.faults.stragglers = vec![(0, 50.0)];
        let fast = small(PolicyChoice::SourceAware).run();
        let slowed = slow.run();
        assert!(slowed.wall_time > fast.wall_time);
        assert_eq!(slowed.bytes_delivered, fast.bytes_delivered);
    }

    #[test]
    fn multi_client_aggregate() {
        let mut cfg = small(PolicyChoice::SourceAware);
        cfg.clients = 3;
        let m = cfg.run();
        assert_eq!(m.bytes_delivered, 3 * 8 * 1024 * 1024);
        assert_eq!(m.per_client_bw.len(), 3);
        assert!(m.per_client_bw.iter().all(|&b| b > 0.0));
    }

    #[test]
    fn write_path_conserves_bytes() {
        use crate::scenario::IoDirection;
        let m = small(PolicyChoice::SourceAware)
            .with_direction(IoDirection::Write)
            .run();
        assert_eq!(m.bytes_delivered, 8 * 1024 * 1024);
        assert_eq!(m.requests_completed, 16);
        assert_eq!(m.strips_delivered, 128);
        // Writes raise one ack interrupt per strip.
        assert_eq!(m.interrupts, 128);
    }

    #[test]
    fn write_path_shows_no_policy_effect() {
        use crate::scenario::IoDirection;
        // The paper's scoping claim: no data returns on writes, so there is
        // no locality for interrupt placement to exploit.
        let s = small(PolicyChoice::SourceAware)
            .with_direction(IoDirection::Write)
            .run();
        let b = small(PolicyChoice::LowestLoaded)
            .with_direction(IoDirection::Write)
            .run();
        let gap = (s.bandwidth_bytes_per_sec() / b.bandwidth_bytes_per_sec() - 1.0).abs();
        assert!(gap < 0.01, "write-path policy gap should vanish: {gap:.4}");
        assert_eq!(s.strip_migrations, 0);
        assert_eq!(b.strip_migrations, 0);
    }

    #[test]
    fn unpinned_migration_ablation() {
        let mut cfg = small(PolicyChoice::SourceAware);
        cfg.pin_processes = false;
        cfg.cpu.block_migration_prob = 0.5;
        let m = cfg.run();
        assert!(m.process_migrations > 0);
        // Migrated consumers break source-affinity: some strips migrate.
        assert!(m.strip_migrations > 0);
    }
}
