//! The §VI in-memory simulation: parallel I/O from a RAM disk, with the
//! NIC bottleneck removed (Fig. 14).
//!
//! The paper builds two user-space analogues of the scheduling policies:
//!
//! * **Si-SAIs** — a thread *pair sharing one core's cache*: the same
//!   execution context reads data strips from files on a RAM disk and
//!   combines them into the requested buffer, so strip data is consumed
//!   where it was produced (source-aware by construction).
//! * **Si-Irqbalance** — two *independent processes*: one reads strips,
//!   the other combines them. The OS places them on different cores, so
//!   every strip crosses private caches, reproducing the migration cost.
//!
//! Data comes from memory (4×2 GB DDR2-667, 5333 MB/s peak), so the only
//! bottlenecks left are the DRAM channel and the cores — which is the
//! point: this is where SAIs' full potential shows (the paper measures
//! +53.23 % peak, converging to parity once the CPUs saturate).
//!
//! A real-threads (non-simulated) version of the same experiment lives in
//! `sais-workload::memexp`.

use sais_cpu::{CpuCore, CpuParams, WorkClass};
use sais_mem::{AddrAlloc, AddrRange, MemParams, MemorySystem};
use sais_sim::{Engine, Model, RateResource, Scheduler, SimDuration, SimTime};
use std::collections::VecDeque;

/// Which §VI configuration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSimMode {
    /// Thread pair sharing a core: source-aware by construction.
    SiSais,
    /// Independent reader/combiner processes on separate cores.
    SiIrqbalance,
}

impl MemSimMode {
    /// Table label (the paper's series names).
    pub fn label(self) -> &'static str {
        match self {
            MemSimMode::SiSais => "Si-SAIs",
            MemSimMode::SiIrqbalance => "Si-Irqbalance",
        }
    }
}

/// Configuration of one in-memory run.
#[derive(Debug, Clone)]
pub struct MemSimConfig {
    /// Policy analogue under test.
    pub mode: MemSimMode,
    /// Concurrent applications.
    pub apps: usize,
    /// Strip size (testbed: 64 KB strips from each RAM-disk file).
    pub strip_size: u64,
    /// Transfer (request) size — 1 MB, "verified to be the best buffer
    /// size" in the paper's prior testing.
    pub transfer_size: u64,
    /// Bytes each application reads in total.
    pub bytes_per_app: u64,
    /// Per-strip fixed overhead (file-descriptor read path).
    pub per_strip_overhead: SimDuration,
    /// Read-ahead depth of the Si-Irqbalance reader process, in strips.
    pub read_ahead: usize,
    /// Memory parameters (DRAM channel bandwidth caps everything).
    pub mem: MemParams,
    /// CPU parameters.
    pub cpu: CpuParams,
}

impl MemSimConfig {
    /// The paper's head-node setup.
    pub fn testbed(mode: MemSimMode, apps: usize) -> Self {
        MemSimConfig {
            mode,
            apps,
            strip_size: 64 * 1024,
            transfer_size: 1024 * 1024,
            bytes_per_app: 64 * 1024 * 1024,
            per_strip_overhead: SimDuration::from_micros(20),
            read_ahead: 8,
            mem: MemParams::sunfire_x4240(),
            cpu: CpuParams::sunfire_head_node(),
        }
    }

    /// Execute and collect metrics.
    pub fn run(self) -> MemSimMetrics {
        let strips = self.bytes_per_app / self.strip_size * self.apps as u64;
        let mut engine = Engine::new(MemSim::new(self));
        engine.prime(SimTime::ZERO, MEv::Start);
        engine.run_to_quiescence(strips * 8 + 1024);
        let model = engine.model();
        model.metrics()
    }
}

/// Results of one in-memory run.
#[derive(Debug, Clone)]
pub struct MemSimMetrics {
    /// Mode that ran.
    pub mode: MemSimMode,
    /// Aggregate delivered bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Mean CPU utilization over the run.
    pub cpu_utilization: f64,
    /// Aggregate L2 miss rate.
    pub l2_miss_rate: f64,
    /// Cache-to-cache line transfers.
    pub c2c_lines: u64,
    /// Wall time.
    pub wall: SimTime,
}

#[derive(Debug, Clone, Copy)]
enum MEv {
    Start,
    ReadDone { app: u32 },
    CombineDone { app: u32 },
}

struct AppState {
    reader_core: usize,
    combiner_core: usize,
    strips_read: u64,
    strips_combined: u64,
    strips_total: u64,
    /// Strip being read right now (None when the reader is idle).
    in_flight: Option<AddrRange>,
    /// Strips fully read, awaiting the combiner.
    queue: VecDeque<AddrRange>,
    combiner_busy: bool,
    user_buf: AddrRange,
    user_off: u64,
}

struct MemSim {
    cfg: MemSimConfig,
    cores: Vec<CpuCore>,
    mem: MemorySystem,
    alloc: AddrAlloc,
    channel: RateResource,
    apps: Vec<AppState>,
    bytes_done: u64,
    apps_done: usize,
    t_done: SimTime,
}

impl MemSim {
    fn new(cfg: MemSimConfig) -> Self {
        assert!(cfg.apps >= 1);
        assert!(cfg.transfer_size.is_multiple_of(cfg.strip_size));
        let ncores = cfg.cpu.cores;
        let mut alloc = AddrAlloc::new(cfg.mem.line_size);
        let strips_total = cfg.bytes_per_app / cfg.strip_size;
        let apps = (0..cfg.apps)
            .map(|a| {
                // Si-SAIs: one core per app. Si-Irqbalance: the scheduler
                // spreads the two processes over different cores; once apps
                // outnumber core pairs, the load balancer interleaves heavy
                // combiners with light readers rather than stacking two
                // combiners on one core.
                let (reader_core, combiner_core) = match cfg.mode {
                    MemSimMode::SiSais => (a % ncores, a % ncores),
                    MemSimMode::SiIrqbalance => (a % ncores, (a + ncores.max(2) / 2) % ncores),
                };
                AppState {
                    reader_core,
                    combiner_core,
                    strips_read: 0,
                    strips_combined: 0,
                    strips_total,
                    in_flight: None,
                    queue: VecDeque::new(),
                    combiner_busy: false,
                    user_buf: alloc.alloc(cfg.transfer_size),
                    user_off: 0,
                }
            })
            .collect();
        let channel = RateResource::new(cfg.mem.dram_bw);
        MemSim {
            mem: MemorySystem::new(ncores, cfg.mem.clone()),
            cores: (0..ncores).map(CpuCore::new).collect(),
            alloc,
            channel,
            apps,
            bytes_done: 0,
            apps_done: 0,
            t_done: SimTime::ZERO,
            cfg,
        }
    }

    /// Reader starts the next strip from the RAM disk, if allowed: DRAM
    /// channel occupancy plus core time for the memcpy.
    fn start_read(&mut self, app: u32, now: SimTime, sched: &mut Scheduler<'_, MEv>) {
        let a = &mut self.apps[app as usize];
        if a.strips_read >= a.strips_total || a.in_flight.is_some() {
            return;
        }
        let can_start = match self.cfg.mode {
            // The shared thread alternates read and combine strictly.
            MemSimMode::SiSais => a.queue.is_empty() && !a.combiner_busy,
            MemSimMode::SiIrqbalance => a.queue.len() < self.cfg.read_ahead,
        };
        if !can_start {
            return;
        }
        a.strips_read += 1;
        let kbuf = self.alloc.alloc(self.cfg.strip_size);
        a.in_flight = Some(kbuf);
        // The read occupies the DRAM channel for the strip; the core is
        // busy for the channel window it actually uses (queueing behind
        // other apps' transfers is waiting, not work).
        let (_, ch_e) = self.channel.transfer(now, self.cfg.strip_size);
        let counts = self.mem.touch(a.reader_core, kbuf);
        self.mem.note_background(a.reader_core, counts.lines * 8);
        // A memcpy from contended DRAM stalls the core for queueing as
        // well as transfer: stalled cycles are unhalted cycles, which is
        // how the paper's saturated runs reach ~99 % utilization.
        let dur = ch_e.since(now) + self.cfg.per_strip_overhead + counts.cost(self.mem.params());
        let core_done = self.cores[a.reader_core].run(now, dur, WorkClass::SoftIrq);
        sched.at(core_done.max_of(ch_e), MEv::ReadDone { app });
    }

    fn start_combine(&mut self, app: u32, now: SimTime, sched: &mut Scheduler<'_, MEv>) {
        let a = &mut self.apps[app as usize];
        if a.combiner_busy {
            return;
        }
        let Some(kbuf) = a.queue.pop_front() else {
            return;
        };
        a.combiner_busy = true;
        let src = self.mem.touch(a.combiner_core, kbuf);
        let dst_range = AddrRange::new(a.user_buf.start + a.user_off, self.cfg.strip_size);
        a.user_off = (a.user_off + self.cfg.strip_size) % self.cfg.transfer_size;
        let dst = self.mem.touch(a.combiner_core, dst_range);
        self.mem
            .note_background(a.combiner_core, (src.lines + dst.lines) * 8);
        // The combine's DRAM traffic shares the channel: the destination
        // write-back stream plus any refetch of evicted source lines.
        let channel_bytes = self.cfg.strip_size + src.dram * self.cfg.mem.line_size;
        self.channel.transfer(now, channel_bytes);
        let p = self.mem.params();
        let dur = self.cfg.per_strip_overhead + src.cost(p) + dst.cost(p);
        let done = self.cores[a.combiner_core].run(now, dur, WorkClass::Copy);
        sched.at(done, MEv::CombineDone { app });
    }
}

impl Model for MemSim {
    type Event = MEv;

    fn handle(&mut self, event: MEv, sched: &mut Scheduler<'_, MEv>) {
        let now = sched.now();
        match event {
            MEv::Start => {
                for app in 0..self.apps.len() as u32 {
                    self.start_read(app, now, sched);
                }
            }
            MEv::ReadDone { app } => {
                let a = &mut self.apps[app as usize];
                let kbuf = a.in_flight.take().expect("read completion without read");
                a.queue.push_back(kbuf);
                self.start_combine(app, now, sched);
                self.start_read(app, now, sched);
            }
            MEv::CombineDone { app } => {
                {
                    let a = &mut self.apps[app as usize];
                    a.combiner_busy = false;
                    a.strips_combined += 1;
                    self.bytes_done += self.cfg.strip_size;
                    if a.strips_combined == a.strips_total {
                        self.apps_done += 1;
                        if now > self.t_done {
                            self.t_done = now;
                        }
                    }
                }
                self.start_combine(app, now, sched);
                self.start_read(app, now, sched);
            }
        }
    }
}

impl MemSim {
    fn metrics(&self) -> MemSimMetrics {
        assert_eq!(self.apps_done, self.apps.len(), "run incomplete");
        let wall = self.t_done.max_of(SimTime::from_nanos(1));
        let util: f64 =
            self.cores.iter().map(|c| c.utilization(wall)).sum::<f64>() / self.cores.len() as f64;
        MemSimMetrics {
            mode: self.cfg.mode,
            bandwidth: self.bytes_done as f64 / wall.as_secs_f64(),
            cpu_utilization: util,
            l2_miss_rate: self.mem.miss_rate(),
            c2c_lines: self.mem.c2c_transfers(),
            wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mode: MemSimMode, apps: usize) -> MemSimMetrics {
        let mut cfg = MemSimConfig::testbed(mode, apps);
        cfg.bytes_per_app = 8 * 1024 * 1024;
        cfg.run()
    }

    #[test]
    fn si_sais_has_no_migrations() {
        let m = quick(MemSimMode::SiSais, 2);
        assert_eq!(m.c2c_lines, 0);
        assert!(m.bandwidth > 0.0);
    }

    #[test]
    fn si_irqbalance_migrates_and_is_slower() {
        let s = quick(MemSimMode::SiSais, 2);
        let b = quick(MemSimMode::SiIrqbalance, 2);
        assert!(b.c2c_lines > 0);
        assert!(
            s.bandwidth > b.bandwidth,
            "Si-SAIs {:.0} vs Si-Irqbalance {:.0} MB/s",
            s.bandwidth / 1e6,
            b.bandwidth / 1e6
        );
        assert!(s.l2_miss_rate < b.l2_miss_rate);
    }

    #[test]
    fn bandwidth_scales_then_saturates() {
        let b1 = quick(MemSimMode::SiSais, 1).bandwidth;
        let b2 = quick(MemSimMode::SiSais, 2).bandwidth;
        let b8 = quick(MemSimMode::SiSais, 8).bandwidth;
        let b12 = quick(MemSimMode::SiSais, 12).bandwidth;
        assert!(b2 > b1 * 1.5, "near-linear at low app counts");
        assert!(b8 > b2, "keeps growing until saturation");
        // Saturated regime: adding apps doesn't add bandwidth.
        assert!((b12 - b8).abs() / b8 < 0.25, "b8={b8} b12={b12}");
        // The DRAM channel caps everything.
        assert!(b8 < 5333e6);
    }

    #[test]
    fn policies_converge_when_saturated() {
        // At apps == cores both policies pin every core at ~100 % and the
        // DRAM channel becomes the common ceiling (the paper's ~2500 MB/s
        // plateau).
        let s = quick(MemSimMode::SiSais, 8);
        let b = quick(MemSimMode::SiIrqbalance, 8);
        let unsat_s = quick(MemSimMode::SiSais, 2);
        let unsat_b = quick(MemSimMode::SiIrqbalance, 2);
        let gap = (s.bandwidth - b.bandwidth).abs() / s.bandwidth;
        let unsat_gap = (unsat_s.bandwidth - unsat_b.bandwidth) / unsat_s.bandwidth;
        assert!(gap < 0.15, "saturated gap should shrink, got {gap:.2}");
        assert!(
            unsat_gap > 0.25,
            "unsaturated gap should be large, got {unsat_gap:.2}"
        );
        assert!(s.cpu_utilization > 0.9 && b.cpu_utilization > 0.9);
    }

    #[test]
    fn utilization_rises_with_apps() {
        let low = quick(MemSimMode::SiSais, 1).cpu_utilization;
        let high = quick(MemSimMode::SiSais, 8).cpu_utilization;
        assert!(high > low);
        assert!(high > 0.5, "8 apps on 8 cores should be busy: {high}");
    }

    #[test]
    fn deterministic() {
        let a = quick(MemSimMode::SiIrqbalance, 3);
        let b = quick(MemSimMode::SiIrqbalance, 3);
        assert_eq!(a.wall, b.wall);
        assert_eq!(a.c2c_lines, b.c2c_lines);
    }
}
