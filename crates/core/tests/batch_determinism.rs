//! End-to-end proof that batched dispatch changes nothing observable:
//! running a scenario through `Model::handle_batch` (the production path,
//! `Engine::run_bounded`) and through per-event reference dispatch
//! (`Engine::run_bounded_unbatched`) must produce bit-identical
//! `RunMetrics` and a byte-identical exported trace.
//!
//! The only legitimate divergence is the engine's own batch accounting —
//! per-event dispatch counts every event as a batch of one — so those
//! counters are zeroed on both sides before the comparison.

use sais_core::cluster::{Cluster, Ev};
use sais_core::scenario::{ObsConfig, PolicyChoice, RunMetrics, ScenarioConfig};
use sais_obs::perfetto::to_chrome_json;
use sais_sim::{Engine, SimTime};

/// Generous runaway backstop for the small scenario below.
const MAX_EVENTS: u64 = 50_000_000;

fn scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::testbed_3gig(8, 512 * 1024);
    cfg.file_size = 8 * 1024 * 1024;
    // Several clients run identical pipelines in lockstep, so their
    // events tie on the timestamp — without ties the batched path never
    // forms a batch bigger than one and the comparison proves nothing.
    cfg.clients = 3;
    // Observability on: the exported trace must match too, not just the
    // scalar metrics.
    cfg.with_policy(PolicyChoice::SourceAware)
        .with_observability(ObsConfig::full())
}

/// Run `cfg` to quiescence on either dispatch path and collect the same
/// quantities `ScenarioConfig::run_full` collects, plus the exported
/// Chrome-JSON trace.
fn run(cfg: ScenarioConfig, batched: bool) -> (RunMetrics, String) {
    let mut engine = Engine::new(Cluster::new(cfg));
    engine.prime(SimTime::ZERO, Ev::Start);
    if batched {
        engine.run_to_quiescence(MAX_EVENTS);
    } else {
        engine.run_to_quiescence_unbatched(MAX_EVENTS);
    }
    let now = engine.now();
    let dispatched = engine.dispatched();
    let queue_high_water = engine.queue_high_water() as u64;
    let queue_cascades = engine.queue_cascades();
    let queue_peak_buckets = engine.queue_peak_buckets() as u64;
    let dispatch_batches = engine.dispatch_batches();
    let dispatch_max_batch = engine.max_batch();
    let cluster = engine.into_model();
    let mut m = cluster.collect_metrics(now);
    m.events_dispatched = dispatched;
    m.queue_high_water = queue_high_water;
    m.queue_cascades = queue_cascades;
    m.queue_peak_buckets = queue_peak_buckets;
    m.dispatch_batches = dispatch_batches;
    m.dispatch_max_batch = dispatch_max_batch;
    let trace = to_chrome_json(cluster.recorder());
    (m, trace)
}

/// Zero the counters that *define* the two dispatch styles apart; every
/// other field must agree exactly.
fn scrub_batch_accounting(m: &mut RunMetrics) {
    m.dispatch_batches = 0;
    m.dispatch_max_batch = 0;
    m.dispatch_batch_hist.clear();
}

#[test]
fn batched_and_per_event_dispatch_are_bit_identical() {
    let (mut batched, trace_batched) = run(scenario(), true);
    let (mut single, trace_single) = run(scenario(), false);

    // Sanity: the batched run actually batched (otherwise this test
    // proves nothing) and both runs simulated the full file.
    assert!(
        batched.dispatch_max_batch > 1,
        "scenario produced no same-timestamp runs (max batch {})",
        batched.dispatch_max_batch
    );
    assert!(
        batched.dispatch_batches < single.dispatch_batches,
        "batching must dispatch fewer, larger batches"
    );
    assert_eq!(batched.bytes_delivered, 3 * 8 * 1024 * 1024);

    scrub_batch_accounting(&mut batched);
    scrub_batch_accounting(&mut single);

    // `RunMetrics` does not implement `PartialEq` (floats); the Debug
    // rendering is a faithful shortest-round-trip encoding of every
    // field, so string equality here is bit equality on the numbers.
    assert_eq!(
        format!("{batched:?}"),
        format!("{single:?}"),
        "metrics diverged between dispatch styles"
    );
    assert_eq!(
        trace_batched, trace_single,
        "exported traces diverged between dispatch styles"
    );
    assert!(
        trace_batched.contains("\"traceEvents\""),
        "observability was on, trace must be non-trivial"
    );
}

#[test]
fn faulted_scenario_is_dispatch_style_invariant() {
    // Loss + option stripping drive retransmit timers and the recovery
    // paths — the schedule shapes most likely to expose an ordering bug
    // in batch collection.
    let mut cfg = scenario();
    cfg.faults.loss = 0.03;
    cfg.faults.option_strip = 0.05;
    let (mut batched, trace_batched) = run(cfg.clone(), true);
    let (mut single, trace_single) = run(cfg, false);
    assert!(batched.retransmits > 0, "faults must actually fire");
    scrub_batch_accounting(&mut batched);
    scrub_batch_accounting(&mut single);
    assert_eq!(format!("{batched:?}"), format!("{single:?}"));
    assert_eq!(trace_batched, trace_single);
}
