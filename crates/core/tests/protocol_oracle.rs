//! Oracle equivalence for the protocol extraction out of `Cluster`.
//!
//! Two layers of evidence that the refactor changed nothing:
//!
//! * **Draw-order equivalence** — the pre-refactor cluster rewrote the
//!   IRQ batch schedule with inline fault loops consuming the fault RNG
//!   in a specific order. Those loops are re-implemented here verbatim as
//!   a reference oracle and run against [`sais_core::protocol`]'s pure
//!   rewrites on the same seeds: identical output schedules, identical
//!   counters, identical number of RNG draws (checked by continuing both
//!   streams afterwards). This is the property that keeps every seeded
//!   figure CSV byte-identical across the refactor.
//! * **Whole-system invariants** — random fault plans through the full
//!   DES must preserve the steering-churn accounting the protocol model
//!   proves: `degrades - repromotes == degraded_flows` at run end, and
//!   churn only ever moves in degrade→re-promote alternation (degrades ≥
//!   repromotes).

use proptest::prelude::*;
use sais_core::protocol;
use sais_core::scenario::{PolicyChoice, ScenarioConfig};
use sais_net::InterruptBatch;
use sais_sim::{SimDuration, SimRng, SimTime};

/// The exact coalesce loop `Cluster::handle_strip_at_nic` used before the
/// extraction, kept as the reference oracle.
fn reference_coalesce(
    batches: &[InterruptBatch],
    rng: &mut SimRng,
    p: f64,
) -> (Vec<InterruptBatch>, u64) {
    let last = batches.len() - 1;
    let mut merged = Vec::with_capacity(batches.len());
    let mut merges = 0u64;
    let mut carry_frames = 0u64;
    let mut carry_bytes = 0u64;
    for (i, b) in batches.iter().enumerate() {
        if i < last && rng.chance(p) {
            carry_frames += b.frames;
            carry_bytes += b.bytes;
            merges += 1;
            continue;
        }
        merged.push(InterruptBatch {
            time: b.time,
            frames: b.frames + carry_frames,
            bytes: b.bytes + carry_bytes,
        });
        carry_frames = 0;
        carry_bytes = 0;
    }
    (merged, merges)
}

/// The exact delay loop from the same function.
fn reference_delay(
    batches: &mut [InterruptBatch],
    rng: &mut SimRng,
    p: f64,
    by: SimDuration,
) -> u64 {
    let mut delayed = 0u64;
    for b in batches.iter_mut() {
        if rng.chance(p) {
            b.time += by;
            delayed += 1;
        }
    }
    delayed
}

fn schedule(spec: &[(u64, u64, u64)]) -> Vec<InterruptBatch> {
    spec.iter()
        .map(|&(t_us, frames, bytes)| InterruptBatch {
            time: SimTime::from_micros(t_us),
            frames,
            bytes,
        })
        .collect()
}

proptest! {
    /// `protocol::coalesce_batches` with an RNG closure is draw-for-draw
    /// identical to the pre-refactor inline loop.
    #[test]
    fn coalesce_matches_prerefactor_loop(
        seed in any::<u64>(),
        p in 0.0f64..1.0,
        spec in proptest::collection::vec((0u64..10_000, 1u64..64, 0u64..96_000), 1..40),
    ) {
        let batches = schedule(&spec);
        let mut ref_rng = SimRng::new(seed);
        let mut new_rng = SimRng::new(seed);
        let (ref_out, ref_merges) = reference_coalesce(&batches, &mut ref_rng, p);
        let (new_out, new_merges) =
            protocol::coalesce_batches(&batches, |_| new_rng.chance(p));
        prop_assert_eq!(&new_out, &ref_out);
        prop_assert_eq!(new_merges, ref_merges);
        // Same number of draws consumed: the streams stay in lock-step
        // for whatever the simulation draws next.
        prop_assert_eq!(ref_rng.next_u64(), new_rng.next_u64());
    }

    /// Same for `protocol::delay_batches`.
    #[test]
    fn delay_matches_prerefactor_loop(
        seed in any::<u64>(),
        p in 0.0f64..1.0,
        by_us in 1u64..500,
        spec in proptest::collection::vec((0u64..10_000, 1u64..64, 0u64..96_000), 1..40),
    ) {
        let by = SimDuration::from_micros(by_us);
        let mut ref_batches = schedule(&spec);
        let mut new_batches = ref_batches.clone();
        let mut ref_rng = SimRng::new(seed);
        let mut new_rng = SimRng::new(seed);
        let ref_n = reference_delay(&mut ref_batches, &mut ref_rng, p, by);
        let new_n = protocol::delay_batches(&mut new_batches, by, |_| new_rng.chance(p));
        prop_assert_eq!(&new_batches, &ref_batches);
        prop_assert_eq!(new_n, ref_n);
        prop_assert_eq!(ref_rng.next_u64(), new_rng.next_u64());
    }

    /// Both rewrites conserve payload: frames and bytes in == frames and
    /// bytes out, under any decision sequence.
    #[test]
    fn rewrites_conserve_payload(
        seed in any::<u64>(),
        p in 0.0f64..1.0,
        spec in proptest::collection::vec((0u64..10_000, 1u64..64, 0u64..96_000), 1..40),
    ) {
        let batches = schedule(&spec);
        let frames: u64 = batches.iter().map(|b| b.frames).sum();
        let bytes: u64 = batches.iter().map(|b| b.bytes).sum();
        let mut rng = SimRng::new(seed);
        let (out, merges) = protocol::coalesce_batches(&batches, |_| rng.chance(p));
        prop_assert_eq!(out.iter().map(|b| b.frames).sum::<u64>(), frames);
        prop_assert_eq!(out.iter().map(|b| b.bytes).sum::<u64>(), bytes);
        prop_assert_eq!(out.len() as u64 + merges, batches.len() as u64);
    }
}

/// Random fault plans through the full DES keep the steering-churn
/// accounting the protocol model proves: every degrade episode either
/// ended in a re-promotion or is still degraded at run end. A handful of
/// seeded full-system runs (kept small — each is a complete DES run)
/// spanning clean, corrupting, stripping, and IRQ-perturbing plans.
#[test]
fn des_churn_accounting_matches_protocol_invariant() {
    // (sim seed, fault seed, corruption, option_strip, irq_coalesce, irq_delay)
    let plans = [
        (1u64, 11u64, 0.0, 0.0, 0.0, 0.0),
        (2, 22, 0.15, 0.0, 0.0, 0.0),
        (3, 33, 0.0, 0.5, 0.0, 0.0),
        (4, 44, 0.0, 1.0, 0.3, 0.3),
        (5, 55, 0.25, 0.35, 0.2, 0.4),
        (6, 66, 0.05, 0.8, 0.5, 0.1),
    ];
    for (sim_seed, fault_seed, corruption, option_strip, irq_coalesce, irq_delay) in plans {
        let mut cfg = ScenarioConfig::testbed_3gig(4, 256 * 1024);
        cfg.file_size = 2 << 20;
        cfg.seed = sim_seed;
        cfg.policy = PolicyChoice::SourceAware;
        cfg.faults.seed = fault_seed;
        cfg.faults.corruption = corruption;
        cfg.faults.option_strip = option_strip;
        cfg.faults.irq_coalesce = irq_coalesce;
        cfg.faults.irq_delay = irq_delay;
        let m = cfg.run();
        assert!(
            m.steering_degrades >= m.steering_repromotes,
            "repromote without degrade: {} < {} (plan {sim_seed}/{fault_seed})",
            m.steering_degrades,
            m.steering_repromotes
        );
        assert_eq!(
            m.steering_degrades - m.steering_repromotes,
            m.degraded_flows,
            "episode accounting broken (plan {sim_seed}/{fault_seed})"
        );
    }
}
