//! Property tests driving [`sais_core::slab::Slab`] against a `HashMap`
//! oracle (referenced from the slab's module docs).
//!
//! The oracle keys values by the full `(index, generation)` handle, so a
//! recycled slot's old and new occupants are distinct oracle entries —
//! exactly the ABA distinction the generation exists to enforce. Every
//! random op sequence checks: live refs resolve to the oracle's value,
//! freed refs resolve to `None` forever (including across recycling and
//! forced generation wrap-around), `len` matches the oracle, and
//! `high_water` equals the true running peak.

use proptest::prelude::*;
use sais_core::slab::{Slab, SlabRef};
use std::collections::HashMap;

/// One step of the random workload. Index fields pick among the
/// currently-live (or already-freed) refs modulo the list length, so
/// every generated sequence is valid by construction.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a fresh value.
    Insert(u64),
    /// Remove a live ref; optionally wind the vacated slot's generation
    /// to `u32::MAX` so the next recycle exercises wrap-around.
    Remove { pick: usize, wind_to_wrap: bool },
    /// Look up a live ref and compare against the oracle.
    GetLive(usize),
    /// Look up a freed ref; must be `None` no matter what reused the slot.
    GetStale(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u64>().prop_map(Op::Insert),
        (any::<usize>(), any::<bool>())
            .prop_map(|(pick, wind_to_wrap)| Op::Remove { pick, wind_to_wrap }),
        any::<usize>().prop_map(Op::GetLive),
        any::<usize>().prop_map(Op::GetStale),
    ]
}

proptest! {
    #[test]
    fn slab_matches_hashmap_oracle(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut slab: Slab<u64> = Slab::new();
        let mut oracle: HashMap<(u32, u32), u64> = HashMap::new();
        let mut live: Vec<SlabRef> = Vec::new();
        let mut stale: Vec<SlabRef> = Vec::new();
        let mut peak = 0usize;

        for op in ops {
            match op {
                Op::Insert(v) => {
                    let r = slab.insert(v);
                    prop_assert!(
                        oracle.insert((r.index(), r.generation()), v).is_none(),
                        "slab reissued a live handle: {r:?}"
                    );
                    live.push(r);
                    peak = peak.max(live.len());
                }
                Op::Remove { pick, wind_to_wrap } => {
                    if live.is_empty() {
                        continue;
                    }
                    let r = live.swap_remove(pick % live.len());
                    let expect = oracle.remove(&(r.index(), r.generation())).unwrap();
                    prop_assert_eq!(slab.remove(r), expect);
                    stale.push(r);
                    if wind_to_wrap {
                        // The vacated slot is on the free list; force its
                        // generation to the wrap boundary so a later
                        // recycle crosses u32::MAX -> 0. The surgery
                        // deliberately re-enters the generation space of
                        // every earlier ref to this slot (the documented
                        // 2^32-recycle collision, compressed), so those
                        // refs forfeit their staleness guarantee and
                        // leave the oracle's stale set.
                        slab.set_generation_for_test(r.index(), u32::MAX);
                        stale.retain(|s| s.index() != r.index());
                    }
                }
                Op::GetLive(pick) => {
                    if live.is_empty() {
                        continue;
                    }
                    let r = live[pick % live.len()];
                    let expect = oracle.get(&(r.index(), r.generation()));
                    prop_assert_eq!(slab.get(r), expect);
                    prop_assert_eq!(slab[r], *expect.unwrap());
                }
                Op::GetStale(pick) => {
                    if stale.is_empty() {
                        continue;
                    }
                    let r = stale[pick % stale.len()];
                    prop_assert_eq!(
                        slab.get(r), None,
                        "freed ref {r:?} resolved after recycling"
                    );
                }
            }
            prop_assert_eq!(slab.len(), oracle.len());
            prop_assert_eq!(slab.is_empty(), oracle.is_empty());
            prop_assert_eq!(slab.high_water(), peak);
        }

        // Final sweep: every live ref still resolves, every stale ref is
        // still dead, and iteration lists exactly the live set.
        for r in &live {
            prop_assert_eq!(slab.get(*r), oracle.get(&(r.index(), r.generation())));
        }
        for r in &stale {
            prop_assert_eq!(slab.get(*r), None);
        }
        let mut listed: Vec<(u32, u32, u64)> = slab
            .iter()
            .map(|(r, v)| (r.index(), r.generation(), *v))
            .collect();
        listed.sort_unstable();
        let mut expected: Vec<(u32, u32, u64)> = oracle
            .iter()
            .map(|(&(i, g), &v)| (i, g, v))
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(listed, expected);
    }

    #[test]
    fn recycling_is_lifo_and_generation_bumps(values in proptest::collection::vec(any::<u64>(), 1..40)) {
        // Insert/remove churn on a single slot: the free list is LIFO, so
        // one value at a time always reuses slot 0, and each cycle bumps
        // the generation by exactly one.
        let mut slab: Slab<u64> = Slab::new();
        let mut prev_gen: Option<u32> = None;
        for &v in &values {
            let r = slab.insert(v);
            prop_assert_eq!(r.index(), 0, "LIFO recycling must reuse slot 0");
            if let Some(g) = prev_gen {
                prop_assert_eq!(r.generation(), g.wrapping_add(1));
            }
            prop_assert_eq!(slab.remove(r), v);
            prop_assert_eq!(slab.get(r), None);
            prev_gen = Some(r.generation());
        }
        prop_assert_eq!(slab.high_water(), 1);
    }
}
