//! # sais-workload — benchmark workloads for the SAIs reproduction
//!
//! The paper evaluates SAIs with **IOR** (the LLNL Interleaved-or-Random
//! parallel file system benchmark) plus a per-request compute task, in
//! three shapes:
//!
//! * single-client transfer-size × server-count sweeps (Figs. 5–11) —
//!   [`ior`] maps IOR-style parameters onto the simulator's
//!   `ScenarioConfig`;
//! * the multi-client scalability test (Fig. 12) — [`multiclient`];
//! * a checkpoint/restart lifecycle ([`checkpoint`]) — the data-intensive
//!   application pattern the paper's introduction motivates;
//! * the §VI in-memory experiment, for which this crate additionally
//!   provides a **real multi-threaded implementation** ([`memexp`]) that
//!   runs on the host machine with real threads, complementing the
//!   deterministic DES version in `sais_core::memsim`.

pub mod autotune;
pub mod checkpoint;
pub mod ior;
pub mod memexp;
pub mod multiclient;

pub use autotune::{tune, TuneResult};
pub use checkpoint::{CheckpointConfig, CheckpointReport};
pub use ior::{IorApi, IorConfig};
pub use memexp::{MemExpConfig, MemExpMode, MemExpResult};
pub use multiclient::{multiclient_config, MultiClientPoint};
