//! The §VI experiment with **real threads** on the host machine.
//!
//! This is the non-simulated twin of `sais_core::memsim`: data strips are
//! read from in-memory "files" (the RAM disk) and combined into a request
//! buffer.
//!
//! * **Si-SAIs** — one thread per application does both the strip read and
//!   the combine, so the strip is consumed by the cache that produced it.
//! * **Si-Irqbalance** — per application, a reader thread and a combiner
//!   thread connected by a bounded channel; the OS is free to run them on
//!   different cores, so strips migrate between caches.
//!
//! Results are machine-dependent (unlike the DES), so tests only assert
//! correctness; `examples/memory_sim.rs` prints the measured curve.

use std::sync::mpsc;
use std::time::Instant;

/// Which configuration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemExpMode {
    /// Read + combine on one thread per app.
    SiSais,
    /// Reader and combiner threads per app, linked by a channel.
    SiIrqbalance,
}

impl MemExpMode {
    /// Series label.
    pub fn label(self) -> &'static str {
        match self {
            MemExpMode::SiSais => "Si-SAIs",
            MemExpMode::SiIrqbalance => "Si-Irqbalance",
        }
    }
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct MemExpConfig {
    /// Mode under test.
    pub mode: MemExpMode,
    /// Concurrent applications.
    pub apps: usize,
    /// Strip size (paper: 64 KB).
    pub strip_size: usize,
    /// Request size (paper: 1 MB, "the best buffer size").
    pub transfer_size: usize,
    /// Bytes each application reads in total.
    pub bytes_per_app: usize,
    /// Number of RAM-disk files strips are read from round-robin
    /// (simulating the multiple I/O nodes).
    pub files: usize,
    /// Reader→combiner channel depth (Si-Irqbalance only), in strips.
    pub read_ahead: usize,
}

impl MemExpConfig {
    /// Paper-shaped defaults at a size suitable for an interactive run.
    pub fn new(mode: MemExpMode, apps: usize) -> Self {
        MemExpConfig {
            mode,
            apps,
            strip_size: 64 * 1024,
            transfer_size: 1024 * 1024,
            bytes_per_app: 64 * 1024 * 1024,
            files: 8,
            read_ahead: 8,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemExpResult {
    /// Aggregate delivered bandwidth, bytes/second (wall-clock).
    pub bandwidth: f64,
    /// XOR checksum over all combined bytes — identical across modes for
    /// the same configuration, proving both moved the same data.
    pub checksum: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Deterministic pseudo-file content: byte `i` of file `f`. SplitMix-style
/// finalizer so the stream is aperiodic (a plain multiplicative pattern
/// repeats every 256 bytes, which would make all strips of a file
/// identical and XOR checksums degenerate to zero).
#[inline]
fn file_byte(f: usize, i: usize) -> u8 {
    let mut x = (i as u64)
        .wrapping_add((f as u64) << 40)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x >> 24) as u8
}

/// Build the RAM-disk files.
fn build_files(cfg: &MemExpConfig) -> Vec<Vec<u8>> {
    // Each file only needs to be strip-aligned and long enough to wrap.
    let file_len = (cfg.strip_size * 64).max(cfg.strip_size);
    (0..cfg.files)
        .map(|f| (0..file_len).map(|i| file_byte(f, i)).collect())
        .collect()
}

/// Combine (fold) a strip into the request buffer and return a running
/// checksum contribution. The XOR fold stands in for the paper's
/// "combines the returned data strips together into the requested data".
fn combine_into(dst: &mut [u8], strip: &[u8]) -> u64 {
    debug_assert_eq!(dst.len(), strip.len());
    let mut sum = 0u64;
    for (d, &s) in dst.iter_mut().zip(strip.iter()) {
        *d ^= s;
        sum = sum.rotate_left(7) ^ *d as u64;
    }
    sum
}

/// One application's worth of work in Si-SAIs mode (single thread).
fn run_app_sais(cfg: &MemExpConfig, files: &[Vec<u8>], app: usize) -> u64 {
    let strips = cfg.bytes_per_app / cfg.strip_size;
    let strips_per_transfer = cfg.transfer_size / cfg.strip_size;
    let mut buf = vec![0u8; cfg.transfer_size];
    let mut checksum = 0u64;
    for s in 0..strips {
        let file = &files[(app + s) % files.len()];
        let off = (s * cfg.strip_size) % (file.len() - cfg.strip_size + 1);
        let strip = &file[off..off + cfg.strip_size];
        let slot = (s % strips_per_transfer) * cfg.strip_size;
        checksum ^= combine_into(&mut buf[slot..slot + cfg.strip_size], strip);
    }
    checksum
}

/// One application's worth of work in Si-Irqbalance mode (two threads).
fn run_app_irqbalance(cfg: &MemExpConfig, files: &[Vec<u8>], app: usize) -> u64 {
    let strips = cfg.bytes_per_app / cfg.strip_size;
    let strips_per_transfer = cfg.transfer_size / cfg.strip_size;
    let (tx, rx) = mpsc::sync_channel::<Box<[u8]>>(cfg.read_ahead);
    std::thread::scope(|scope| {
        // Reader: copies strips out of the RAM disk and ships them.
        scope.spawn(move || {
            for s in 0..strips {
                let file = &files[(app + s) % files.len()];
                let off = (s * cfg.strip_size) % (file.len() - cfg.strip_size + 1);
                let strip: Box<[u8]> = file[off..off + cfg.strip_size].into();
                if tx.send(strip).is_err() {
                    return;
                }
            }
        });
        // Combiner: this thread.
        let mut buf = vec![0u8; cfg.transfer_size];
        let mut checksum = 0u64;
        for s in 0..strips {
            let strip = rx.recv().expect("reader died");
            let slot = (s % strips_per_transfer) * cfg.strip_size;
            checksum ^= combine_into(&mut buf[slot..slot + cfg.strip_size], &strip);
        }
        checksum
    })
}

impl MemExpConfig {
    /// Run the experiment on real threads; wall time is measured around the
    /// parallel section only.
    pub fn run(&self) -> MemExpResult {
        assert!(self.apps >= 1);
        assert!(self.strip_size > 0 && self.transfer_size.is_multiple_of(self.strip_size));
        assert!(self.bytes_per_app.is_multiple_of(self.strip_size));
        let files = build_files(self);
        let start = Instant::now();
        let checksum = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.apps)
                .map(|app| {
                    let files = &files;
                    scope.spawn(move || match self.mode {
                        MemExpMode::SiSais => run_app_sais(self, files, app),
                        MemExpMode::SiIrqbalance => run_app_irqbalance(self, files, app),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("app thread panicked"))
                .fold(0u64, |a, b| a ^ b)
        });
        let seconds = start.elapsed().as_secs_f64();
        let total = (self.bytes_per_app * self.apps) as f64;
        MemExpResult {
            bandwidth: total / seconds.max(1e-9),
            checksum,
            seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(mode: MemExpMode, apps: usize) -> MemExpConfig {
        MemExpConfig {
            bytes_per_app: 4 * 1024 * 1024,
            ..MemExpConfig::new(mode, apps)
        }
    }

    #[test]
    fn both_modes_compute_identical_checksums() {
        let a = small(MemExpMode::SiSais, 2).run();
        let b = small(MemExpMode::SiIrqbalance, 2).run();
        assert_eq!(a.checksum, b.checksum, "same data must flow in both modes");
        assert!(a.bandwidth > 0.0 && b.bandwidth > 0.0);
    }

    #[test]
    fn checksum_depends_on_app_count() {
        let one = small(MemExpMode::SiSais, 1).run();
        let two = small(MemExpMode::SiSais, 2).run();
        assert_ne!(one.checksum, two.checksum);
    }

    #[test]
    fn checksum_stable_across_runs() {
        let a = small(MemExpMode::SiIrqbalance, 3).run();
        let b = small(MemExpMode::SiIrqbalance, 3).run();
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn degenerate_single_strip_transfer() {
        let mut cfg = small(MemExpMode::SiSais, 1);
        cfg.transfer_size = cfg.strip_size;
        let r = cfg.run();
        assert!(r.seconds >= 0.0);
    }

    #[test]
    #[should_panic]
    fn misaligned_transfer_rejected() {
        let mut cfg = small(MemExpMode::SiSais, 1);
        cfg.transfer_size = cfg.strip_size + 1;
        cfg.run();
    }
}
