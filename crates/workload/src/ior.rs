//! IOR-style workload description.
//!
//! Mirrors the IOR parameters the paper reports: API (MPI-IO in the
//! experiments), transfer size `-t`, block size per process `-b`, number
//! of processes, read-only access, plus the added compute (encryption)
//! task. `to_scenario` lowers the description onto the simulator.

use sais_core::scenario::{PolicyChoice, ScenarioConfig};

/// The I/O API IOR is driven through. The paper uses MPI-IO; POSIX and
/// HDF5 differ only in per-request overhead at this modelling depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IorApi {
    /// MPI-IO (the paper's experiments).
    MpiIo,
    /// POSIX read().
    Posix,
    /// HDF5 (heavier metadata per request).
    Hdf5,
}

impl IorApi {
    /// Extra per-request issue overhead relative to POSIX, in microseconds.
    fn issue_overhead_us(self) -> u64 {
        match self {
            IorApi::Posix => 10,
            IorApi::MpiIo => 15,
            IorApi::Hdf5 => 40,
        }
    }
}

/// An IOR run description.
#[derive(Debug, Clone)]
pub struct IorConfig {
    /// I/O API.
    pub api: IorApi,
    /// `-t`: transfer size per read call.
    pub transfer_size: u64,
    /// Total bytes read per client node (the paper reads a 10 GB file).
    pub block_size: u64,
    /// Number of IOR processes per client.
    pub nprocs: usize,
    /// Compute task: encryption cycles per byte applied to each transfer.
    pub encrypt_cycles_per_byte: f64,
}

impl IorConfig {
    /// The paper's configuration: MPI-IO, one process, 10 GB file (callers
    /// scale `block_size` down for quick runs).
    pub fn paper_default(transfer_size: u64) -> Self {
        IorConfig {
            api: IorApi::MpiIo,
            transfer_size,
            block_size: 10 * 1024 * 1024 * 1024,
            nprocs: 1,
            encrypt_cycles_per_byte: 2.0,
        }
    }

    /// Lower onto a simulator scenario against `servers` PVFS servers with
    /// the given client NIC ports.
    pub fn to_scenario(&self, servers: usize, nic_ports: usize) -> ScenarioConfig {
        assert!(nic_ports >= 1);
        let mut cfg = if nic_ports == 1 {
            ScenarioConfig::testbed_1gig(servers, self.transfer_size)
        } else {
            let mut c = ScenarioConfig::testbed_3gig(servers, self.transfer_size);
            c.nic_ports = nic_ports;
            c
        };
        cfg.procs_per_client = self.nprocs;
        cfg.file_size = self.block_size;
        cfg.compute_cycles_per_byte = self.encrypt_cycles_per_byte;
        cfg.issue_cost = sais_sim::SimDuration::from_micros(self.api.issue_overhead_us());
        cfg.policy = PolicyChoice::LowestLoaded;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let ior = IorConfig::paper_default(1024 * 1024);
        assert_eq!(ior.api, IorApi::MpiIo);
        assert_eq!(ior.block_size, 10 << 30);
        assert_eq!(ior.nprocs, 1);
    }

    #[test]
    fn lowering_preserves_parameters() {
        let mut ior = IorConfig::paper_default(512 * 1024);
        ior.nprocs = 4;
        ior.block_size = 64 * 1024 * 1024;
        let cfg = ior.to_scenario(16, 3);
        assert_eq!(cfg.servers, 16);
        assert_eq!(cfg.nic_ports, 3);
        assert_eq!(cfg.transfer_size, 512 * 1024);
        assert_eq!(cfg.procs_per_client, 4);
        assert_eq!(cfg.file_size, 64 * 1024 * 1024);
        assert_eq!(
            cfg.strip_size,
            64 * 1024,
            "PVFS strip size is fixed by the deployment"
        );
    }

    #[test]
    fn api_overheads_are_ordered() {
        assert!(IorApi::Posix.issue_overhead_us() < IorApi::MpiIo.issue_overhead_us());
        assert!(IorApi::MpiIo.issue_overhead_us() < IorApi::Hdf5.issue_overhead_us());
    }

    #[test]
    fn scenario_runs_end_to_end() {
        let mut ior = IorConfig::paper_default(256 * 1024);
        ior.block_size = 4 * 1024 * 1024;
        let m = ior.to_scenario(8, 3).run();
        assert_eq!(m.bytes_delivered, 4 * 1024 * 1024);
    }
}
