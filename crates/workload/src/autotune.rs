//! Policy auto-tuning — the related-work idea (VTune, autopin) of
//! searching configuration space for the best data-core mapping, realized
//! against the simulator: enumerate candidate steering policies for a
//! given deployment and pick the winner by measured bandwidth.
//!
//! The paper's criticism of those tools is that they "cannot detect the
//! application core information and change the source-aware automatically
//! while processes are running" — and indeed the search below rediscovers
//! SAIs (or its Hybrid variant) as the winner wherever inbound data
//! locality matters, without being told why.

use sais_core::scenario::{PolicyChoice, RunMetrics, ScenarioConfig};

/// All searchable policies.
pub const CANDIDATES: [PolicyChoice; 7] = [
    PolicyChoice::RoundRobin,
    PolicyChoice::Dedicated,
    PolicyChoice::LowestLoaded,
    PolicyChoice::IrqbalanceDaemon,
    PolicyChoice::FlowHash,
    PolicyChoice::Hybrid,
    PolicyChoice::SourceAware,
];

/// Result of evaluating one candidate.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The candidate.
    pub policy: PolicyChoice,
    /// Its full metrics.
    pub metrics: RunMetrics,
}

/// Outcome of a search.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Every candidate, sorted best-first by bandwidth.
    pub ranking: Vec<Evaluation>,
}

impl TuneResult {
    /// The winning policy.
    pub fn best(&self) -> PolicyChoice {
        self.ranking[0].policy
    }

    /// Winner's margin over the runner-up, as a fraction.
    pub fn margin(&self) -> f64 {
        if self.ranking.len() < 2 {
            return 0.0;
        }
        let a = self.ranking[0].metrics.bandwidth_bytes_per_sec();
        let b = self.ranking[1].metrics.bandwidth_bytes_per_sec();
        a / b - 1.0
    }
}

/// Evaluate every candidate policy on `base` (its `policy` field is
/// ignored), in parallel across host cores. Deterministic: each candidate
/// runs the same seeded scenario.
pub fn tune(base: &ScenarioConfig) -> TuneResult {
    let mut evals: Vec<Option<Evaluation>> = Vec::new();
    evals.resize_with(CANDIDATES.len(), || None);
    let slots = std::sync::Mutex::new(&mut evals);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(CANDIDATES.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= CANDIDATES.len() {
                    break;
                }
                let policy = CANDIDATES[i];
                let metrics = base.clone().with_policy(policy).run();
                slots.lock().expect("no poisoning")[i] = Some(Evaluation { policy, metrics });
            });
        }
    });
    let mut ranking: Vec<Evaluation> = evals.into_iter().map(|e| e.expect("evaluated")).collect();
    ranking.sort_by(|a, b| {
        b.metrics
            .bandwidth_bytes_per_sec()
            .total_cmp(&a.metrics.bandwidth_bytes_per_sec())
    });
    TuneResult { ranking }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sais_apic::PolicyKind;

    #[test]
    fn search_rediscovers_source_awareness_on_reads() {
        let mut base = ScenarioConfig::testbed_3gig(16, 128 * 1024);
        base.file_size = 8 << 20;
        // Two processes so no fixed-core policy wins by accident.
        base.procs_per_client = 2;
        let result = tune(&base);
        assert_eq!(result.ranking.len(), CANDIDATES.len());
        let winner = result.best().kind();
        assert!(
            matches!(winner, PolicyKind::SourceAware | PolicyKind::Hybrid),
            "expected a hint-following winner, got {winner:?}"
        );
        assert!(result.margin() >= 0.0);
        // Ranking is genuinely sorted.
        for w in result.ranking.windows(2) {
            assert!(
                w[0].metrics.bandwidth_bytes_per_sec() >= w[1].metrics.bandwidth_bytes_per_sec()
            );
        }
    }

    #[test]
    fn search_finds_no_winner_on_writes() {
        use sais_core::scenario::IoDirection;
        let mut base = ScenarioConfig::testbed_3gig(16, 512 * 1024);
        base.file_size = 8 << 20;
        base.direction = IoDirection::Write;
        let result = tune(&base);
        // On writes everything ties (within measurement noise).
        assert!(
            result.margin() < 0.01,
            "no policy should win writes, margin {:.4}",
            result.margin()
        );
    }
}
