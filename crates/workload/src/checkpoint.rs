//! Checkpoint/restart: the data-intensive HPC pattern the paper's
//! introduction motivates (the I/O wall limiting "the sustained
//! performance of parallel applications").
//!
//! An application alternates compute phases with checkpoint *writes*; on
//! failure or requeue it performs a restart *read* of the latest
//! checkpoint. Interrupt steering only matters for the inbound (restart)
//! half — which is exactly what this scenario quantifies end-to-end: how
//! much application-level wall time SAIs recovers as a function of how
//! often the job restarts.

use sais_core::scenario::{IoDirection, PolicyChoice, ScenarioConfig};
use sais_sim::{SimDuration, SimTime};

/// A checkpointed application run.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint image size per rank (bytes).
    pub image_bytes: u64,
    /// Ranks on the client node (one per core at most).
    pub ranks: usize,
    /// Compute time between checkpoints.
    pub compute_phase: SimDuration,
    /// Checkpoints taken over the run.
    pub checkpoints: u64,
    /// Restarts (reads of the latest image) over the run.
    pub restarts: u64,
    /// Transfer size used by the checkpoint library.
    pub transfer_size: u64,
    /// PVFS servers.
    pub servers: usize,
    /// Steering policy under test.
    pub policy: PolicyChoice,
}

impl CheckpointConfig {
    /// A medium job: 64 MB images, 4 ranks, 16 servers.
    pub fn medium(policy: PolicyChoice) -> Self {
        CheckpointConfig {
            image_bytes: 64 << 20,
            ranks: 4,
            compute_phase: SimDuration::from_millis(500),
            checkpoints: 4,
            restarts: 1,
            transfer_size: 512 << 10,
            servers: 16,
            policy,
        }
    }

    fn io_scenario(&self, direction: IoDirection) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::testbed_3gig(self.servers, self.transfer_size);
        // Checkpoints are written by every rank concurrently; the restart
        // is driven by the checkpoint loader, a single process that reads
        // all of the node's images back before handing them out.
        cfg.procs_per_client = match direction {
            IoDirection::Write => self.ranks,
            IoDirection::Read => 1,
        };
        cfg.file_size = self.image_bytes * self.ranks as u64;
        cfg.policy = self.policy;
        cfg.direction = direction;
        // The checkpoint library does no per-byte "encryption"; compute
        // happens in the dedicated compute phases.
        cfg.compute_cycles_per_byte = 0.5;
        cfg
    }

    /// Execute the whole lifecycle and report phase timings.
    pub fn run(&self) -> CheckpointReport {
        assert!(self.checkpoints > 0 || self.restarts > 0);
        let write_wall = if self.checkpoints > 0 {
            self.io_scenario(IoDirection::Write).run().wall_time
        } else {
            SimTime::ZERO
        };
        let read_wall = if self.restarts > 0 {
            self.io_scenario(IoDirection::Read).run().wall_time
        } else {
            SimTime::ZERO
        };
        let compute = SimDuration::from_nanos(self.compute_phase.as_nanos() * self.checkpoints);
        let write_total = SimDuration::from_nanos(write_wall.as_nanos() * self.checkpoints);
        let read_total = SimDuration::from_nanos(read_wall.as_nanos() * self.restarts);
        CheckpointReport {
            compute,
            checkpoint_io: write_total,
            restart_io: read_total,
        }
    }
}

/// Phase breakdown of a checkpointed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Time in compute phases.
    pub compute: SimDuration,
    /// Time writing checkpoints.
    pub checkpoint_io: SimDuration,
    /// Time reading checkpoints back (restarts).
    pub restart_io: SimDuration,
}

impl CheckpointReport {
    /// Total wall time.
    pub fn total(&self) -> SimDuration {
        self.compute + self.checkpoint_io + self.restart_io
    }

    /// Fraction of the run spent computing (the figure of merit the
    /// I/O-wall literature tracks).
    pub fn compute_efficiency(&self) -> f64 {
        self.compute.as_secs_f64() / self.total().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: PolicyChoice) -> CheckpointConfig {
        CheckpointConfig {
            image_bytes: 4 << 20,
            ranks: 2,
            compute_phase: SimDuration::from_millis(100),
            checkpoints: 2,
            restarts: 1,
            transfer_size: 512 << 10,
            servers: 8,
            policy,
        }
    }

    #[test]
    fn phases_add_up() {
        let r = small(PolicyChoice::SourceAware).run();
        assert!(r.compute > SimDuration::ZERO);
        assert!(r.checkpoint_io > SimDuration::ZERO);
        assert!(r.restart_io > SimDuration::ZERO);
        assert_eq!(r.total(), r.compute + r.checkpoint_io + r.restart_io);
        let eff = r.compute_efficiency();
        assert!(eff > 0.0 && eff < 1.0);
    }

    #[test]
    fn sais_speeds_up_restart_but_not_checkpoint() {
        let s = small(PolicyChoice::SourceAware).run();
        let b = small(PolicyChoice::LowestLoaded).run();
        // Writes: no inbound data, no effect.
        let w_gap = (s.checkpoint_io.as_secs_f64() / b.checkpoint_io.as_secs_f64() - 1.0).abs();
        assert!(w_gap < 0.01, "checkpoint gap {w_gap:.4}");
        // Reads: SAIs recovers restart time.
        assert!(
            s.restart_io < b.restart_io,
            "restart: SAIs {:?} vs irqbalance {:?}",
            s.restart_io,
            b.restart_io
        );
        assert!(s.compute_efficiency() >= b.compute_efficiency());
    }

    #[test]
    fn restart_heavy_jobs_benefit_more() {
        let mut few = small(PolicyChoice::SourceAware);
        few.restarts = 0;
        few.checkpoints = 2;
        let mut many = small(PolicyChoice::SourceAware);
        many.restarts = 4;
        let mut few_b = small(PolicyChoice::LowestLoaded);
        few_b.restarts = 0;
        few_b.checkpoints = 2;
        let mut many_b = small(PolicyChoice::LowestLoaded);
        many_b.restarts = 4;
        let gain = |s: CheckpointReport, b: CheckpointReport| {
            b.total().as_secs_f64() / s.total().as_secs_f64() - 1.0
        };
        let g_few = gain(few.run(), few_b.run());
        let g_many = gain(many.run(), many_b.run());
        assert!(
            g_many > g_few,
            "restart-heavy gain {g_many:.4} vs {g_few:.4}"
        );
        assert!(g_few.abs() < 0.01, "write-only jobs see no effect");
    }
}
