//! The Fig. 12 multi-client scalability scenario.
//!
//! Eight I/O server nodes, a variable number of client nodes (4 → 56 in
//! the paper), every client running IOR processes with 1 MB transfers.
//! The interesting regimes: below 8 clients the servers have headroom;
//! at 8 clients their aggregate uplink saturates (peak speed-up, 20.46 %
//! in the paper); beyond that, per-client request rate `N_R` falls and
//! with it SAIs' advantage (the eq. 5/6 argument).

use sais_core::scenario::{PolicyChoice, RunMetrics, ScenarioConfig};

/// One point of the Fig. 12 sweep.
#[derive(Debug, Clone)]
pub struct MultiClientPoint {
    /// Client node count.
    pub clients: usize,
    /// Aggregate bandwidth under SAIs, bytes/s.
    pub sais_bw: f64,
    /// Aggregate bandwidth under irqbalance, bytes/s.
    pub irqbalance_bw: f64,
}

impl MultiClientPoint {
    /// Speed-up of SAIs over irqbalance at this point.
    pub fn speedup(&self) -> f64 {
        if self.irqbalance_bw == 0.0 {
            0.0
        } else {
            self.sais_bw / self.irqbalance_bw - 1.0
        }
    }

    /// Run both policies for `clients` clients.
    pub fn measure(clients: usize, bytes_per_client: u64) -> Self {
        let sais = multiclient_config(clients, bytes_per_client)
            .with_policy(PolicyChoice::SourceAware)
            .run();
        let irqb = multiclient_config(clients, bytes_per_client)
            .with_policy(PolicyChoice::LowestLoaded)
            .run();
        MultiClientPoint {
            clients,
            sais_bw: sais.bandwidth_bytes_per_sec(),
            irqbalance_bw: irqb.bandwidth_bytes_per_sec(),
        }
    }
}

/// The Fig. 12 configuration: 8 servers, `clients` 3-Gig client nodes,
/// 1 MB transfers, multiple IOR processes per client.
pub fn multiclient_config(clients: usize, bytes_per_client: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::testbed_3gig(8, 1024 * 1024);
    cfg.clients = clients;
    // One IOR process per client keeps the client-side pipeline exposed
    // (with many processes the per-process request gaps swallow the
    // interrupt-placement effect entirely; see EXPERIMENTS.md).
    cfg.procs_per_client = 1;
    cfg.file_size = bytes_per_client;
    cfg
}

/// Aggregate-bandwidth helper used by tests and the figure binary.
pub fn aggregate_bw(m: &RunMetrics) -> f64 {
    m.bandwidth_bytes_per_sec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_shape() {
        let cfg = multiclient_config(12, 32 * 1024 * 1024);
        assert_eq!(cfg.clients, 12);
        assert_eq!(cfg.servers, 8);
        assert_eq!(cfg.transfer_size, 1024 * 1024);
        assert_eq!(cfg.procs_per_client, 1);
    }

    #[test]
    fn aggregate_bandwidth_grows_until_servers_saturate() {
        let bytes = 16 * 1024 * 1024;
        let b2 = MultiClientPoint::measure(2, bytes);
        let b6 = MultiClientPoint::measure(6, bytes);
        assert!(
            b6.irqbalance_bw > b2.irqbalance_bw,
            "more clients, more aggregate bandwidth below saturation"
        );
        // Below server saturation SAIs keeps a small positive edge; at and
        // beyond it the effect is hidden behind the server uplinks (see
        // EXPERIMENTS.md for the comparison against the paper's Fig. 12).
        assert!(b2.speedup() > 0.005, "speedup {:.4}", b2.speedup());
        assert!(b6.speedup() > -0.02, "speedup {:.4}", b6.speedup());
    }

    #[test]
    fn oversubscription_caps_aggregate() {
        let bytes = 8 * 1024 * 1024;
        let at = |n| MultiClientPoint::measure(n, bytes);
        let b8 = at(8);
        let b16 = at(16);
        // 8 servers × 1 GbE = 1 GB/s ceiling; 16 clients cannot double it.
        assert!(b16.irqbalance_bw < b8.irqbalance_bw * 1.6);
        // In overload SAIs at worst ties (its option overhead is ~0.3 %).
        assert!(b16.speedup() >= -0.015, "speedup {:.4}", b16.speedup());
    }
}
