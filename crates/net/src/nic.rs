//! The client NIC: port bonding and interrupt coalescing.
//!
//! The testbed's "3-Gigabit NIC" is three 1-GbE BCM5715C ports bonded
//! together; flows hash onto ports, so aggregate receive bandwidth reaches
//! 3 Gb/s only when enough server flows are active. Received frames are
//! **coalesced**: the NIC raises one hardirq per batch of up to
//! `max_frames` completions rather than per frame (NAPI-era behaviour).
//! Coalescing matters to the paper's problem: under irqbalance each *batch*
//! is steered independently, so even a single strip's frames can land on
//! several cores.

use crate::flow::FlowId;
use crate::segment::SegmentPlan;
use sais_sim::{RateResource, SimDuration, SimTime};

/// Interrupt-coalescing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceParams {
    /// Maximum frame completions per interrupt.
    pub max_frames: u64,
}

impl Default for CoalesceParams {
    fn default() -> Self {
        // BCM57xx-era rx-frames default neighbourhood.
        CoalesceParams { max_frames: 8 }
    }
}

impl CoalesceParams {
    /// No coalescing: one interrupt per frame.
    pub fn per_frame() -> Self {
        CoalesceParams { max_frames: 1 }
    }
}

/// One hardirq raised by the NIC, covering `frames` frame completions of a
/// strip that finished arriving by `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptBatch {
    /// When the interrupt fires.
    pub time: SimTime,
    /// Frames covered.
    pub frames: u64,
    /// Payload bytes covered (approximate, proportional share).
    pub bytes: u64,
}

/// A bonded set of receive ports.
#[derive(Debug, Clone)]
pub struct NicBond {
    ports: Vec<RateResource>,
    propagation: SimDuration,
    frames_received: u64,
    interrupts_raised: u64,
}

impl NicBond {
    /// A bond of `ports` ports, each of `bits_per_sec`, with a fixed
    /// receive-path latency (switch forwarding + PHY + DMA).
    pub fn new(ports: usize, bits_per_sec: f64, propagation: SimDuration) -> Self {
        assert!(ports > 0);
        NicBond {
            ports: (0..ports)
                .map(|_| RateResource::from_bits_per_sec(bits_per_sec))
                .collect(),
            propagation,
            frames_received: 0,
            interrupts_raised: 0,
        }
    }

    /// The testbed 1-Gigabit configuration.
    pub fn gige_single() -> Self {
        NicBond::new(1, 1e9, SimDuration::from_micros(20))
    }

    /// The testbed 3-Gigabit configuration (3 × 1 GbE bonded).
    pub fn gige_bonded_3() -> Self {
        NicBond::new(3, 1e9, SimDuration::from_micros(20))
    }

    /// Number of bonded ports.
    pub fn ports(&self) -> usize {
        self.ports.len()
    }

    /// Aggregate nominal capacity in bytes/second.
    pub fn capacity_bytes_per_sec(&self) -> f64 {
        self.ports.iter().map(|p| p.bytes_per_sec()).sum()
    }

    /// Receive one strip from the given flow, earliest at `now`:
    /// serializes the strip's wire bytes on the flow's port and produces
    /// the coalesced interrupt schedule. Returns the batches in firing
    /// order; the last batch fires when the strip has fully arrived.
    pub fn receive_strip(
        &mut self,
        now: SimTime,
        flow: FlowId,
        plan: SegmentPlan,
        coalesce: CoalesceParams,
    ) -> Vec<InterruptBatch> {
        assert!(coalesce.max_frames >= 1);
        let port = (flow.value() % self.ports.len() as u64) as usize;
        let (start, end) = self.ports[port].transfer(now, plan.wire_bytes);
        let window = end - start;
        let batches = plan.packets.div_ceil(coalesce.max_frames);
        let mut out = Vec::with_capacity(batches as usize);
        let mut frames_done = 0u64;
        let mut bytes_done = 0u64;
        for b in 1..=batches {
            let frames_cum = (plan.packets * b) / batches;
            let frames = frames_cum - frames_done;
            frames_done = frames_cum;
            let bytes_cum = (plan.payload * frames_cum) / plan.packets;
            let bytes = bytes_cum - bytes_done;
            bytes_done = bytes_cum;
            // The batch fires when its last frame has arrived (linear
            // interpolation across the serialization window) plus the
            // receive-path latency.
            let t = start
                + SimDuration::from_nanos(window.as_nanos() * frames_cum / plan.packets)
                + self.propagation;
            out.push(InterruptBatch {
                time: t,
                frames,
                bytes,
            });
        }
        debug_assert_eq!(frames_done, plan.packets);
        debug_assert_eq!(bytes_done, plan.payload);
        self.frames_received += plan.packets;
        self.interrupts_raised += batches;
        out
    }

    /// Total frames received.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Total hardirqs raised.
    pub fn interrupts_raised(&self) -> u64 {
        self.interrupts_raised
    }

    /// Aggregate achieved receive rate over `[0, horizon]`.
    pub fn achieved_rate(&self, horizon: SimTime) -> f64 {
        self.ports.iter().map(|p| p.achieved_rate(horizon)).sum()
    }

    /// Per-port utilization over `[0, horizon]`.
    pub fn port_utilization(&self, horizon: SimTime) -> Vec<f64> {
        self.ports.iter().map(|p| p.utilization(horizon)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_plan() -> SegmentPlan {
        SegmentPlan::with_sais_option(65536, 1500)
    }

    #[test]
    fn batches_cover_all_frames_and_bytes() {
        let mut nic = NicBond::gige_single();
        let batches = nic.receive_strip(
            SimTime::ZERO,
            FlowId(0),
            strip_plan(),
            CoalesceParams { max_frames: 8 },
        );
        let plan = strip_plan();
        assert_eq!(batches.len() as u64, plan.packets.div_ceil(8));
        assert_eq!(batches.iter().map(|b| b.frames).sum::<u64>(), plan.packets);
        assert_eq!(batches.iter().map(|b| b.bytes).sum::<u64>(), plan.payload);
        // Monotone, and the last fires at full arrival + propagation.
        for w in batches.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert_eq!(nic.interrupts_raised(), batches.len() as u64);
        assert_eq!(nic.frames_received(), plan.packets);
    }

    #[test]
    fn no_coalescing_means_one_irq_per_frame() {
        let mut nic = NicBond::gige_single();
        let plan = strip_plan();
        let batches =
            nic.receive_strip(SimTime::ZERO, FlowId(0), plan, CoalesceParams::per_frame());
        assert_eq!(batches.len() as u64, plan.packets);
        assert!(batches.iter().all(|b| b.frames == 1));
    }

    #[test]
    fn flows_spread_across_bond_ports() {
        let mut nic = NicBond::gige_bonded_3();
        // Three flows chosen to land on three distinct ports.
        for f in [FlowId(0), FlowId(1), FlowId(2)] {
            nic.receive_strip(SimTime::ZERO, f, strip_plan(), CoalesceParams::default());
        }
        let horizon = SimTime::from_millis(1);
        let utils = nic.port_utilization(horizon);
        assert!(
            utils.iter().all(|&u| u > 0.0),
            "each port carried a strip: {utils:?}"
        );
    }

    #[test]
    fn same_flow_serializes_on_one_port() {
        let mut nic = NicBond::gige_bonded_3();
        let b1 = nic.receive_strip(
            SimTime::ZERO,
            FlowId(5),
            strip_plan(),
            CoalesceParams::default(),
        );
        let b2 = nic.receive_strip(
            SimTime::ZERO,
            FlowId(5),
            strip_plan(),
            CoalesceParams::default(),
        );
        // Second strip's last batch is one serialization window later.
        let w = strip_plan().wire_bytes;
        let serialization = SimDuration::for_bytes(w, 125e6);
        let delta = b2.last().unwrap().time - b1.last().unwrap().time;
        assert_eq!(delta, serialization);
    }

    #[test]
    fn aggregate_capacity() {
        let nic = NicBond::gige_bonded_3();
        assert_eq!(nic.ports(), 3);
        assert!((nic.capacity_bytes_per_sec() - 375e6).abs() < 1.0);
    }
}
