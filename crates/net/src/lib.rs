//! # sais-net — network substrate: IP with the SAIs option, links, NICs
//!
//! The transport path the paper modifies: PVFS servers return data over
//! TCP/IP; SAIs has the server-side `HintCapsuler` place the requesting
//! core's id (`aff_core_id`) into the **IP options field** of every
//! response packet, and the client NIC driver's `SrcParser` read it back
//! before the interrupt is raised.
//!
//! This crate implements:
//!
//! * [`ip`] — byte-faithful IPv4 headers (checksum included) with the
//!   paper's Figure-4 single-byte option: `copied=1`, `class=01`, 5-bit
//!   option number carrying the core id (≤ 32 cores addressable);
//! * [`segment`] — MTU/MSS arithmetic for turning 64 KB strips into wire
//!   packets, including header overhead accounting;
//! * [`link`] — bandwidth×delay pipes and a store-and-forward switch port;
//! * [`nic`] — the client NIC: optional bonding of k×1GbE ports (the
//!   testbed's "3-Gigabit NIC" is three bonded BCM5715C ports) and
//!   interrupt coalescing (batch completion → one hardirq).

pub mod crc32;
pub mod ethernet;
pub mod fastpath;
pub mod flow;
pub mod ip;
pub mod link;
pub mod nic;
pub mod rss;
pub mod segment;
pub mod switch;
pub mod tcp;

pub use ethernet::{EthernetFrame, FrameError, MacAddr};
pub use fastpath::PodFrame;
pub use flow::FlowId;
pub use ip::{IpOption, Ipv4Header, ParseError, PROTO_TCP};
pub use link::Link;
pub use nic::{CoalesceParams, InterruptBatch, NicBond};
pub use rss::{hash_v4_tcp, toeplitz, IndirectionTable, MICROSOFT_KEY};
pub use segment::{SegmentPlan, ETH_OVERHEAD, IPV4_BASE_HEADER, TCP_HEADER};
pub use switch::{Forward, Switch};
pub use tcp::{simulate_transfer, CongPhase, PipeFaults, TcpReceiver, TcpSender, TransferReport};
