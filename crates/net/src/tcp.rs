//! TCP-lite: a Reno-style reliable stream, segment-level.
//!
//! PVFS moves its data over TCP ("TCP is the most widely used transport
//! protocol in PVFS"), and SAIs inherits TCP's loss recovery: a dropped
//! response packet is retransmitted by the server, and the strip completes
//! late rather than never. The cluster model handles timing at strip
//! granularity; this module implements the *correctness* machinery — the
//! sequence/ACK state machine with slow start, congestion avoidance, fast
//! retransmit on three duplicate ACKs, and retransmission timeout — and
//! proves under test that every byte is delivered exactly once, in order,
//! for any loss pattern.
//!
//! The implementation is deliberately segment-granular (one sequence
//! number per MSS-sized segment) — enough to express Reno's control
//! behaviour without byte-offset bookkeeping.

use sais_sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeSet;

/// Congestion-control phase, for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongPhase {
    /// Exponential window growth below `ssthresh`.
    SlowStart,
    /// Linear growth at or above `ssthresh`.
    CongestionAvoidance,
    /// Between a fast retransmit and the recovery ACK.
    FastRecovery,
}

/// A transmitted segment (sequence number of an MSS unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Sequence number, in segments.
    pub seq: u64,
    /// Whether this is a retransmission.
    pub retransmit: bool,
}

/// The sender half of a TCP-lite connection.
///
/// ```
/// use sais_net::{TcpReceiver, TcpSender};
/// use sais_sim::{SimDuration, SimTime};
///
/// let mut snd = TcpSender::new(100, SimDuration::from_millis(2));
/// let mut rcv = TcpReceiver::new();
/// let mut now = SimTime::ZERO;
/// let mut in_flight: Vec<_> = snd.poll(now).into_iter().collect();
/// while !snd.done() {
///     let seg = in_flight.remove(0);
///     now = now + SimDuration::from_micros(100);
///     let ack = rcv.on_segment(seg.seq);
///     in_flight.extend(snd.on_ack(now, ack));
/// }
/// assert_eq!(rcv.delivered, 100);
/// assert_eq!(snd.retransmits, 0);
/// ```
#[derive(Debug, Clone)]
pub struct TcpSender {
    total: u64,
    next_seq: u64,
    una: u64,
    cwnd: f64,
    ssthresh: f64,
    phase: CongPhase,
    dup_acks: u32,
    recover: u64,
    rto: SimDuration,
    timer: Option<SimTime>,
    /// Segments sent (incl. retransmits).
    pub sent: u64,
    /// Retransmissions performed.
    pub retransmits: u64,
    /// Timeouts taken.
    pub timeouts: u64,
}

impl TcpSender {
    /// A sender with `total` segments to deliver.
    pub fn new(total: u64, rto: SimDuration) -> Self {
        assert!(total > 0);
        TcpSender {
            total,
            next_seq: 0,
            una: 0,
            cwnd: 2.0,
            ssthresh: 64.0,
            phase: CongPhase::SlowStart,
            dup_acks: 0,
            recover: 0,
            rto,
            timer: None,
            sent: 0,
            retransmits: 0,
            timeouts: 0,
        }
    }

    /// Whether every segment has been cumulatively acknowledged.
    pub fn done(&self) -> bool {
        self.una >= self.total
    }

    /// Current congestion window, in segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current phase.
    pub fn phase(&self) -> CongPhase {
        self.phase
    }

    /// Segments in flight.
    fn in_flight(&self) -> u64 {
        self.next_seq - self.una
    }

    /// Emit as many new segments as the window allows, arming the RTO
    /// timer. Call after construction and after every ACK/timeout.
    pub fn poll(&mut self, now: SimTime) -> Vec<Segment> {
        let mut out = Vec::new();
        while self.next_seq < self.total && self.in_flight() < self.cwnd as u64 {
            out.push(Segment {
                seq: self.next_seq,
                retransmit: false,
            });
            self.next_seq += 1;
            self.sent += 1;
        }
        if !out.is_empty() && self.timer.is_none() {
            self.timer = Some(now + self.rto);
        }
        out
    }

    /// When the retransmission timer fires (if armed).
    pub fn timer_deadline(&self) -> Option<SimTime> {
        self.timer
    }

    /// Process a cumulative ACK (receiver has everything below `ack`).
    /// Returns segments to (re)transmit immediately.
    pub fn on_ack(&mut self, now: SimTime, ack: u64) -> Vec<Segment> {
        let mut out = Vec::new();
        if ack > self.una {
            // New data acknowledged.
            self.una = ack;
            // After a timeout's go-back-N rewind, an ACK for pre-timeout
            // data can overtake the rewound send pointer.
            self.next_seq = self.next_seq.max(self.una);
            self.dup_acks = 0;
            match self.phase {
                CongPhase::SlowStart => {
                    self.cwnd += 1.0;
                    if self.cwnd >= self.ssthresh {
                        self.phase = CongPhase::CongestionAvoidance;
                    }
                }
                CongPhase::CongestionAvoidance => {
                    self.cwnd += 1.0 / self.cwnd;
                }
                CongPhase::FastRecovery => {
                    if ack >= self.recover {
                        // Full recovery: deflate to ssthresh.
                        self.cwnd = self.ssthresh;
                        self.phase = CongPhase::CongestionAvoidance;
                    } else {
                        // Partial ACK: retransmit the next hole (NewReno).
                        out.push(Segment {
                            seq: ack,
                            retransmit: true,
                        });
                        self.sent += 1;
                        self.retransmits += 1;
                    }
                }
            }
            self.timer = if self.done() {
                None
            } else {
                Some(now + self.rto)
            };
        } else if ack == self.una && !self.done() {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && self.phase != CongPhase::FastRecovery {
                // Fast retransmit.
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh + 3.0;
                self.phase = CongPhase::FastRecovery;
                self.recover = self.next_seq;
                out.push(Segment {
                    seq: self.una,
                    retransmit: true,
                });
                self.sent += 1;
                self.retransmits += 1;
            } else if self.phase == CongPhase::FastRecovery {
                // Window inflation keeps the pipe full during recovery.
                self.cwnd += 1.0;
            }
        }
        out.extend(self.poll(now));
        out
    }

    /// The RTO fired: collapse the window and go-back-N from `una`.
    pub fn on_timeout(&mut self, now: SimTime) -> Vec<Segment> {
        if self.done() {
            self.timer = None;
            return Vec::new();
        }
        self.timeouts += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 2.0;
        self.phase = CongPhase::SlowStart;
        self.dup_acks = 0;
        // Go-back-N: rewind the send pointer to the first unacked segment.
        self.next_seq = self.una;
        self.retransmits += 1;
        self.sent += 1;
        let mut out = vec![Segment {
            seq: self.una,
            retransmit: true,
        }];
        self.next_seq += 1;
        self.timer = Some(now + self.rto);
        out.extend(self.poll(now));
        out
    }
}

/// The receiver half: reorders segments and produces cumulative ACKs.
#[derive(Debug, Clone, Default)]
pub struct TcpReceiver {
    next_expected: u64,
    out_of_order: BTreeSet<u64>,
    /// Segments accepted for the first time (delivered upward).
    pub delivered: u64,
    /// Duplicate segments discarded.
    pub duplicates: u64,
}

impl TcpReceiver {
    /// A fresh receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accept a segment; returns the cumulative ACK to send back.
    pub fn on_segment(&mut self, seq: u64) -> u64 {
        if seq < self.next_expected || self.out_of_order.contains(&seq) {
            self.duplicates += 1;
        } else {
            self.out_of_order.insert(seq);
            self.delivered += 1;
            while self.out_of_order.remove(&self.next_expected) {
                self.next_expected += 1;
            }
        }
        self.next_expected
    }

    /// Highest in-order sequence received (the cumulative ACK value).
    pub fn ack(&self) -> u64 {
        self.next_expected
    }
}

/// Data-path perturbations for [`simulate_transfer`]: per-segment loss,
/// duplication and reordering on the server→client pipe. A clean pipe
/// draws nothing from the RNG, so a transfer with [`PipeFaults::clean`]
/// leaves the caller's fault stream untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipeFaults {
    /// Probability a segment is dropped in flight.
    pub loss: f64,
    /// Probability a segment is delivered twice.
    pub duplication: f64,
    /// Probability a segment is delayed by [`PipeFaults::reorder_delay`],
    /// letting later segments overtake it.
    pub reorder: f64,
    /// How late a reordered segment arrives.
    pub reorder_delay: SimDuration,
}

impl PipeFaults {
    /// A pipe that delivers every segment once, in order, on time.
    pub fn clean() -> Self {
        PipeFaults {
            loss: 0.0,
            duplication: 0.0,
            reorder: 0.0,
            reorder_delay: SimDuration::ZERO,
        }
    }

    /// Whether this pipe perturbs nothing.
    pub fn is_clean(&self) -> bool {
        self.loss == 0.0 && self.duplication == 0.0 && self.reorder == 0.0
    }
}

/// What a simulated transfer did, for timing and accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferReport {
    /// Time from first transmission to the ACK that completed the stream.
    pub elapsed: SimDuration,
    /// Segments transmitted, including retransmissions.
    pub sent: u64,
    /// Retransmissions (fast retransmit + RTO paths).
    pub retransmits: u64,
    /// Retransmission timeouts taken.
    pub timeouts: u64,
    /// Segments the receiver accepted for the first time.
    pub delivered: u64,
    /// Segments the receiver discarded as duplicates.
    pub duplicates: u64,
}

/// Drive a [`TcpSender`]/[`TcpReceiver`] pair to completion over a faulty
/// pipe with one-way delay `rtt` and retransmission timeout `rto`.
///
/// This is the transport model the cluster runs per strip when a
/// `FaultPlan` perturbs the link: the NewReno machinery recovers every
/// loss, and the report's [`TransferReport::elapsed`] (compared against a
/// clean run) is the delay the fault cost. The conservation guarantee —
/// every segment delivered exactly once, in order, under any schedule —
/// is property-tested in `tests/props.rs`.
///
/// # Panics
/// If `total` is zero, or the transfer needs more than five million events
/// (which a correct sender/receiver pair cannot).
pub fn simulate_transfer(
    total: u64,
    rtt: SimDuration,
    rto: SimDuration,
    faults: &PipeFaults,
    rng: &mut SimRng,
) -> TransferReport {
    sais_prof::zone!("net.transfer");
    let mut snd = TcpSender::new(total, rto);
    let mut rcv = TcpReceiver::new();
    let mut now = SimTime::ZERO;
    // (arrival, tiebreak, seq) — the in-flight data path, ordered by
    // arrival time. The monotone tiebreak keeps simultaneous arrivals
    // (duplicates) in submission order.
    let mut pipe: BTreeSet<(SimTime, u64, u64)> = BTreeSet::new();
    let mut tiebreak = 0u64;
    let mut push = |pipe: &mut BTreeSet<(SimTime, u64, u64)>,
                    rng: &mut SimRng,
                    now: SimTime,
                    segs: Vec<Segment>| {
        for s in segs {
            if faults.loss > 0.0 && rng.chance(faults.loss) {
                continue;
            }
            let mut arrival = now + rtt;
            if faults.reorder > 0.0 && rng.chance(faults.reorder) {
                arrival += faults.reorder_delay;
            }
            pipe.insert((arrival, tiebreak, s.seq));
            tiebreak += 1;
            if faults.duplication > 0.0 && rng.chance(faults.duplication) {
                pipe.insert((arrival, tiebreak, s.seq));
                tiebreak += 1;
            }
        }
    };
    let initial = snd.poll(now);
    push(&mut pipe, rng, now, initial);
    let mut guard = 0;
    while !snd.done() {
        guard += 1;
        assert!(guard < 5_000_000, "transfer did not converge");
        // Next event: earliest of segment arrival or RTO.
        let next_arrival = pipe.first().map(|&(t, ..)| t);
        let deadline = snd.timer_deadline();
        match (next_arrival, deadline) {
            (Some(a), d) if d.is_none() || a <= d.unwrap() => {
                let (t, _, seq) = pipe.pop_first().unwrap();
                now = t;
                let ack = rcv.on_segment(seq);
                // The ACK is modelled as returning instantly; the data
                // direction carries the whole RTT.
                let segs = snd.on_ack(now, ack);
                push(&mut pipe, rng, now, segs);
            }
            (_, Some(d)) => {
                now = d;
                let segs = snd.on_timeout(now);
                push(&mut pipe, rng, now, segs);
            }
            (_, None) => panic!("deadlock: nothing in flight, no timer"),
        }
    }
    TransferReport {
        elapsed: now.since(SimTime::ZERO),
        sent: snd.sent,
        retransmits: snd.retransmits,
        timeouts: snd.timeouts,
        delivered: rcv.delivered,
        duplicates: rcv.duplicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Loss-only transfer over the default test pipe.
    fn run_transfer(total: u64, loss: f64, seed: u64) -> TransferReport {
        let faults = PipeFaults {
            loss,
            ..PipeFaults::clean()
        };
        simulate_transfer(
            total,
            SimDuration::from_micros(200),
            SimDuration::from_millis(2),
            &faults,
            &mut SimRng::new(seed),
        )
    }

    #[test]
    fn lossless_transfer_is_clean() {
        let r = run_transfer(1000, 0.0, 1);
        assert_eq!(r.delivered, 1000);
        assert_eq!(r.retransmits, 0);
        assert_eq!(r.timeouts, 0);
        assert_eq!(r.duplicates, 0);
        assert_eq!(r.sent, 1000);
    }

    #[test]
    fn clean_pipe_draws_nothing_from_the_rng() {
        let mut rng = SimRng::new(42);
        let before = rng.clone();
        let _ = simulate_transfer(
            500,
            SimDuration::from_micros(200),
            SimDuration::from_millis(2),
            &PipeFaults::clean(),
            &mut rng,
        );
        let mut untouched = before;
        assert_eq!(rng.next_u64(), untouched.next_u64());
    }

    #[test]
    fn duplication_and_reorder_still_deliver_exactly_once() {
        let faults = PipeFaults {
            loss: 0.02,
            duplication: 0.1,
            reorder: 0.1,
            reorder_delay: SimDuration::from_micros(500),
        };
        let r = simulate_transfer(
            2000,
            SimDuration::from_micros(200),
            SimDuration::from_millis(2),
            &faults,
            &mut SimRng::new(11),
        );
        assert_eq!(r.delivered, 2000);
        assert!(r.duplicates > 0, "duplication must be observed");
    }

    #[test]
    fn slow_start_doubles_then_linear() {
        let mut snd = TcpSender::new(10_000, SimDuration::from_millis(2));
        assert_eq!(snd.phase(), CongPhase::SlowStart);
        let now = SimTime::ZERO;
        let first = snd.poll(now);
        assert_eq!(first.len(), 2, "initial window of 2");
        // ACK everything outstanding repeatedly; cwnd should pass ssthresh
        // and switch to congestion avoidance.
        let mut acked = 0;
        for _ in 0..200 {
            acked += 1;
            snd.on_ack(now, acked);
            if snd.phase() == CongPhase::CongestionAvoidance {
                break;
            }
        }
        assert_eq!(snd.phase(), CongPhase::CongestionAvoidance);
        assert!(snd.cwnd() >= 64.0);
        let w = snd.cwnd();
        snd.on_ack(now, acked + 1);
        assert!(snd.cwnd() - w < 1.0, "linear growth after ssthresh");
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut snd = TcpSender::new(100, SimDuration::from_millis(2));
        let now = SimTime::ZERO;
        snd.poll(now);
        // Grow the window a bit.
        for a in 1..=2 {
            snd.on_ack(now, a);
        }
        let una = 2;
        assert!(snd.on_ack(now, una).iter().all(|s| !s.retransmit));
        assert!(snd.on_ack(now, una).iter().all(|s| !s.retransmit));
        let third = snd.on_ack(now, una);
        assert!(
            third.iter().any(|s| s.retransmit && s.seq == una),
            "third dupack retransmits the hole: {third:?}"
        );
        assert_eq!(snd.phase(), CongPhase::FastRecovery);
        assert_eq!(snd.retransmits, 1);
        assert_eq!(snd.timeouts, 0);
    }

    #[test]
    fn timeout_collapses_window() {
        let mut snd = TcpSender::new(100, SimDuration::from_millis(2));
        let t0 = SimTime::ZERO;
        snd.poll(t0);
        for a in 1..=20 {
            snd.on_ack(t0, a);
        }
        let before = snd.cwnd();
        assert!(before > 10.0);
        let deadline = snd.timer_deadline().unwrap();
        let segs = snd.on_timeout(deadline);
        assert_eq!(snd.cwnd(), 2.0);
        assert_eq!(snd.phase(), CongPhase::SlowStart);
        assert!(segs[0].retransmit && segs[0].seq == 20);
        assert_eq!(snd.timeouts, 1);
    }

    #[test]
    fn lossy_transfers_deliver_everything_exactly_once() {
        for (loss, seed) in [(0.01, 7u64), (0.05, 8), (0.2, 9)] {
            let r = run_transfer(2000, loss, seed);
            assert_eq!(r.delivered, 2000, "loss={loss}");
            assert!(r.retransmits > 0, "loss={loss} must retransmit");
        }
    }

    #[test]
    fn heavier_loss_takes_longer() {
        let t_clean = run_transfer(2000, 0.0, 3).elapsed;
        let t_lossy = run_transfer(2000, 0.1, 3).elapsed;
        assert!(t_lossy > t_clean);
    }

    #[test]
    fn receiver_reorders_and_dedups() {
        let mut r = TcpReceiver::new();
        assert_eq!(r.on_segment(1), 0, "hole at 0 holds the ACK");
        assert_eq!(r.on_segment(2), 0);
        assert_eq!(r.on_segment(0), 3, "filling the hole releases the run");
        assert_eq!(r.on_segment(1), 3, "duplicate ignored");
        assert_eq!(r.duplicates, 1);
        assert_eq!(r.delivered, 3);
    }
}
