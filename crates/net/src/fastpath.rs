//! The zero-copy frame fast path.
//!
//! The simulation is byte-faithful at the wire: every response strip's
//! first frame is a real Ethernet II frame (FCS and all) around a real
//! IPv4 header whose options may carry the SAIs `aff_core_id`. But in the
//! steady state nothing *inspects* those bytes — the receive path decodes
//! the frame it just encoded, per interrupt batch. [`PodFrame`] carries
//! the same information as a small plain-old-data struct; the byte-level
//! encode/decode remains available through [`PodFrame::materialize`] and
//! is exercised (a) on every fault-injection path that genuinely edits
//! bytes (corruption), and (b) by the equivalence property tests in
//! `tests/props.rs`, which pin the POD ⇄ byte round trip.
//!
//! The invariant the fast path rests on:
//! `SrcParser::parse(EthernetFrame::decode(pod.materialize()).payload)`
//! equals `pod.aff_core` for every representable `PodFrame`.

use crate::ethernet::EthernetFrame;
use crate::ip::Ipv4Header;
use crate::MacAddr;

/// One response strip's first wire frame, as plain old data: enough to
/// reconstruct the exact bytes on demand, cheap enough to store and read
/// millions of times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodFrame {
    /// IPv4 source (the serving I/O server).
    pub src_ip: u32,
    /// IPv4 destination (the requesting client).
    pub dst_ip: u32,
    /// IP identification field.
    pub ident: u16,
    /// L4 payload length carried by the header's `total_len`.
    pub payload_len: u16,
    /// The SAIs option's `aff_core_id`, when the server stamped one.
    pub aff_core: Option<u8>,
}

impl PodFrame {
    /// The hinted core exactly as `SrcParser` would recover it from the
    /// materialized bytes.
    #[inline]
    pub fn hint(&self) -> Option<u8> {
        self.aff_core
    }

    /// The byte-level IPv4 header this POD stands for.
    pub fn header(&self) -> Ipv4Header {
        let hdr = Ipv4Header::tcp(self.src_ip, self.dst_ip, self.ident, self.payload_len);
        match self.aff_core {
            Some(core) => hdr.with_affinity(core),
            None => hdr,
        }
    }

    /// Materialize the full wire frame — Ethernet II with FCS around the
    /// encoded IP header — byte-identical to what the slow path used to
    /// store. Only fault-injection paths (and the verification oracle)
    /// need this.
    pub fn materialize(&self) -> Vec<u8> {
        EthernetFrame::ipv4(
            MacAddr::for_node(self.dst_ip),
            MacAddr::for_node(self.src_ip),
            self.header().encode(),
        )
        .encode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialized_frame_round_trips() {
        let pod = PodFrame {
            src_ip: 0x0A01_0003,
            dst_ip: 0x0A00_0001,
            ident: 42,
            payload_len: 1448,
            aff_core: Some(5),
        };
        let wire = pod.materialize();
        let frame = EthernetFrame::decode(&wire).expect("FCS valid");
        let hdr = Ipv4Header::decode(&frame.payload).expect("checksum valid");
        assert_eq!(hdr.src, pod.src_ip);
        assert_eq!(hdr.dst, pod.dst_ip);
        assert_eq!(hdr.ident, pod.ident);
        assert_eq!(hdr.affinity_hint(), Some(5));
    }

    #[test]
    fn no_option_when_unstamped() {
        let pod = PodFrame {
            src_ip: 1,
            dst_ip: 2,
            ident: 0,
            payload_len: 100,
            aff_core: None,
        };
        let frame = EthernetFrame::decode(&pod.materialize()).unwrap();
        let hdr = Ipv4Header::decode(&frame.payload).unwrap();
        assert_eq!(hdr.affinity_hint(), None);
        assert_eq!(hdr.header_len(), 20);
    }
}
