//! A store-and-forward Ethernet switch with MAC learning.
//!
//! Models the testbed's Cisco Catalyst 4948: output-queued, one
//! [`Link`]-modelled egress per port, a learning forwarding table, and
//! flooding for unknown destinations. The cluster model abstracts the
//! fabric into per-path pipes for speed; this component exists for
//! frame-level experiments and validates that the fabric layer introduces
//! no reordering within a flow.

use crate::ethernet::MacAddr;
use crate::link::Link;
use sais_mem::fxmap::FxHashMap;
use sais_sim::{SimDuration, SimTime};

/// One forwarding decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Forward {
    /// Deliver out of a single learned port: `(port, arrival time)`.
    Unicast(usize, SimTime),
    /// Unknown destination: flooded to all ports except ingress, with
    /// per-port arrival times.
    Flood(Vec<(usize, SimTime)>),
}

/// The switch.
#[derive(Debug, Clone)]
pub struct Switch {
    ports: Vec<Link>,
    table: FxHashMap<[u8; 6], usize>,
    forwarding_latency: SimDuration,
    /// Frames forwarded.
    pub forwarded: u64,
    /// Frames flooded (destination not yet learned).
    pub floods: u64,
}

impl Switch {
    /// A switch with `ports` GigE ports and a fixed forwarding latency.
    pub fn gige(ports: usize) -> Self {
        assert!(ports >= 2);
        Switch {
            ports: (0..ports).map(|_| Link::gige()).collect(),
            table: FxHashMap::default(),
            // Catalyst-class store-and-forward decision latency.
            forwarding_latency: SimDuration::from_micros(5),
            forwarded: 0,
            floods: 0,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports.len()
    }

    /// Whether `mac` has been learned, and on which port.
    pub fn learned_port(&self, mac: MacAddr) -> Option<usize> {
        self.table.get(&mac.0).copied()
    }

    /// Switch a frame of `bytes` bytes entering on `ingress` at `now`,
    /// from `src` to `dst`. Learns the source, then forwards or floods.
    pub fn switch(
        &mut self,
        now: SimTime,
        ingress: usize,
        src: MacAddr,
        dst: MacAddr,
        bytes: u64,
    ) -> Forward {
        assert!(ingress < self.ports.len(), "no such port {ingress}");
        // Learn (or migrate) the source address.
        self.table.insert(src.0, ingress);
        self.forwarded += 1;
        let ready = now + self.forwarding_latency;
        match self.table.get(&dst.0).copied() {
            Some(port) if port != ingress => {
                Forward::Unicast(port, self.ports[port].send(ready, bytes))
            }
            Some(port) => {
                // Destination behind the same port: filter (deliver locally
                // without crossing the fabric again).
                Forward::Unicast(port, ready)
            }
            None => {
                self.floods += 1;
                let out = (0..self.ports.len())
                    .filter(|&p| p != ingress)
                    .map(|p| (p, self.ports[p].send(ready, bytes)))
                    .collect();
                Forward::Flood(out)
            }
        }
    }

    /// Egress utilization per port over `[0, horizon]`.
    pub fn port_utilization(&self, horizon: SimTime) -> Vec<f64> {
        self.ports.iter().map(|p| p.utilization(horizon)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn macs() -> (MacAddr, MacAddr, MacAddr) {
        (
            MacAddr::for_node(1),
            MacAddr::for_node(2),
            MacAddr::for_node(3),
        )
    }

    #[test]
    fn unknown_destination_floods_then_learns() {
        let mut sw = Switch::gige(4);
        let (a, b, _) = macs();
        // First frame a→b: b unknown → flood to ports 1,2,3.
        match sw.switch(SimTime::ZERO, 0, a, b, 1500) {
            Forward::Flood(out) => {
                let ports: Vec<usize> = out.iter().map(|&(p, _)| p).collect();
                assert_eq!(ports, vec![1, 2, 3]);
            }
            other => panic!("expected flood, got {other:?}"),
        }
        assert_eq!(sw.floods, 1);
        assert_eq!(sw.learned_port(a), Some(0));
        // Reply b→a from port 2: a is known → unicast to port 0; b learned.
        match sw.switch(SimTime::from_micros(100), 2, b, a, 1500) {
            Forward::Unicast(0, _) => {}
            other => panic!("expected unicast to 0, got {other:?}"),
        }
        assert_eq!(sw.learned_port(b), Some(2));
        // Now a→b unicasts.
        assert!(matches!(
            sw.switch(SimTime::from_micros(200), 0, a, b, 1500),
            Forward::Unicast(2, _)
        ));
        assert_eq!(sw.floods, 1, "no further flooding");
    }

    #[test]
    fn station_migration_relearns() {
        let mut sw = Switch::gige(3);
        let (a, b, _) = macs();
        sw.switch(SimTime::ZERO, 0, a, b, 100);
        assert_eq!(sw.learned_port(a), Some(0));
        // a moves to port 1 (e.g. bond failover).
        sw.switch(SimTime::from_micros(1), 1, a, b, 100);
        assert_eq!(sw.learned_port(a), Some(1));
    }

    #[test]
    fn egress_serializes_per_port() {
        let mut sw = Switch::gige(2);
        let (a, b, _) = macs();
        // Teach the table both stations.
        sw.switch(SimTime::ZERO, 0, a, b, 64);
        sw.switch(SimTime::ZERO, 1, b, a, 64);
        // Two back-to-back 125 KB frames a→b: second arrives ~1 ms later.
        let t1 = match sw.switch(SimTime::from_millis(1), 0, a, b, 125_000) {
            Forward::Unicast(1, t) => t,
            other => panic!("{other:?}"),
        };
        let t2 = match sw.switch(SimTime::from_millis(1), 0, a, b, 125_000) {
            Forward::Unicast(1, t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!((t2 - t1).as_nanos(), 1_000_000);
    }

    #[test]
    fn same_port_destination_is_filtered() {
        let mut sw = Switch::gige(2);
        let (a, b, _) = macs();
        sw.switch(SimTime::ZERO, 0, b, a, 64); // learn b on port 0
                                               // a→b entering port 0: no fabric crossing.
        match sw.switch(SimTime::from_micros(1), 0, a, b, 1500) {
            Forward::Unicast(0, t) => {
                assert_eq!(t, SimTime::from_micros(6), "forwarding latency only");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn within_flow_order_is_preserved() {
        // Frames of one flow leave the egress in arrival order.
        let mut sw = Switch::gige(2);
        let (a, b, _) = macs();
        sw.switch(SimTime::ZERO, 1, b, a, 64);
        let mut last = SimTime::ZERO;
        for i in 0..50u64 {
            let now = SimTime::from_micros(10 + i);
            match sw.switch(now, 0, a, b, 1500) {
                Forward::Unicast(1, t) => {
                    assert!(t > last, "reordering at frame {i}");
                    last = t;
                }
                other => panic!("{other:?}"),
            }
        }
    }
}
