//! MTU segmentation arithmetic.
//!
//! PVFS moves strips over TCP; each 64 KB strip becomes ~45 wire packets at
//! the standard 1500-byte Ethernet MTU. The simulator works at strip
//! granularity for speed, so this module centralizes the packet/byte math
//! used to (a) time strip transmission on links (payload + header overhead)
//! and (b) count the packets a strip contributes to interrupt coalescing.

/// Ethernet framing overhead per packet: preamble 8 + MAC header 14 +
/// FCS 4 + inter-frame gap 12.
pub const ETH_OVERHEAD: u64 = 38;
/// IPv4 base header.
pub const IPV4_BASE_HEADER: u64 = 20;
/// TCP header without options.
pub const TCP_HEADER: u64 = 20;
/// Standard Ethernet MTU (IP + TCP + payload must fit).
pub const DEFAULT_MTU: u64 = 1500;

/// A segmentation plan for a payload of a given size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Number of wire packets.
    pub packets: u64,
    /// Payload bytes carried.
    pub payload: u64,
    /// Total bytes on the wire including all per-packet overhead.
    pub wire_bytes: u64,
    /// Maximum segment size used.
    pub mss: u64,
}

impl SegmentPlan {
    /// Plan segmentation of `payload` bytes at `mtu`, with `ip_options`
    /// bytes of IP options per packet (the SAIs option costs 4 bytes of
    /// IHL-padded option space on every response packet — the protocol
    /// overhead the design accepts for locality).
    pub fn new(payload: u64, mtu: u64, ip_options: u64) -> Self {
        let ip_header = IPV4_BASE_HEADER + ip_options;
        assert!(ip_header <= 60, "IPv4 header cannot exceed 60 bytes");
        assert!(mtu > ip_header + TCP_HEADER, "MTU too small for headers");
        let mss = mtu - ip_header - TCP_HEADER;
        if payload == 0 {
            // A zero-length message still costs one packet (pure ACK-like).
            return SegmentPlan {
                packets: 1,
                payload: 0,
                wire_bytes: ETH_OVERHEAD + ip_header + TCP_HEADER,
                mss,
            };
        }
        let packets = payload.div_ceil(mss);
        let wire_bytes = payload + packets * (ETH_OVERHEAD + ip_header + TCP_HEADER);
        SegmentPlan {
            packets,
            payload,
            wire_bytes,
            mss,
        }
    }

    /// Plan with the SAIs option present (4 bytes of options per packet).
    pub fn with_sais_option(payload: u64, mtu: u64) -> Self {
        SegmentPlan::new(payload, mtu, 4)
    }

    /// Streaming plan: the payload rides a long-lived TCP stream, so
    /// segments do not align to this payload's boundaries and the
    /// per-packet overhead amortizes fractionally (no +1 packet
    /// quantization per strip). Used by the strip-granular simulator;
    /// `new` models a message-framed transport exactly.
    pub fn streaming(payload: u64, mtu: u64, ip_options: u64) -> Self {
        let ip_header = IPV4_BASE_HEADER + ip_options;
        assert!(ip_header <= 60, "IPv4 header cannot exceed 60 bytes");
        assert!(mtu > ip_header + TCP_HEADER, "MTU too small for headers");
        let mss = mtu - ip_header - TCP_HEADER;
        let per_pkt = ETH_OVERHEAD + ip_header + TCP_HEADER;
        // Round to the nearest packet; charge overhead pro rata.
        let packets = ((payload + mss / 2) / mss).max(1);
        let wire_bytes = payload + (payload as f64 / mss as f64 * per_pkt as f64).round() as u64;
        SegmentPlan {
            packets,
            payload,
            wire_bytes: wire_bytes.max(per_pkt),
            mss,
        }
    }

    /// Plan without options (the Irqbalance baseline wire format).
    pub fn plain(payload: u64, mtu: u64) -> Self {
        SegmentPlan::new(payload, mtu, 0)
    }

    /// Effective goodput ratio: payload / wire bytes.
    pub fn efficiency(&self) -> f64 {
        if self.wire_bytes == 0 {
            0.0
        } else {
            self.payload as f64 / self.wire_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_at_default_mtu() {
        // 64 KB strip, no options: MSS = 1460 → 45 packets.
        let p = SegmentPlan::plain(65536, DEFAULT_MTU);
        assert_eq!(p.mss, 1460);
        assert_eq!(p.packets, 45);
        assert_eq!(p.wire_bytes, 65536 + 45 * 78);
        assert!(p.efficiency() > 0.94);
    }

    #[test]
    fn sais_option_shrinks_mss() {
        let p = SegmentPlan::with_sais_option(65536, DEFAULT_MTU);
        assert_eq!(p.mss, 1456);
        assert_eq!(p.packets, 46, "one extra packet from the 4-byte option");
        // The locality optimisation costs <0.5 % extra wire bytes.
        let plain = SegmentPlan::plain(65536, DEFAULT_MTU);
        let overhead = p.wire_bytes as f64 / plain.wire_bytes as f64 - 1.0;
        assert!(overhead < 0.005, "option overhead {overhead}");
    }

    #[test]
    fn tiny_and_zero_payloads() {
        let p = SegmentPlan::plain(1, DEFAULT_MTU);
        assert_eq!(p.packets, 1);
        let z = SegmentPlan::plain(0, DEFAULT_MTU);
        assert_eq!(z.packets, 1);
        assert_eq!(z.payload, 0);
        assert_eq!(z.efficiency(), 0.0);
    }

    #[test]
    fn exact_multiple_of_mss() {
        let p = SegmentPlan::plain(1460 * 10, DEFAULT_MTU);
        assert_eq!(p.packets, 10);
        let q = SegmentPlan::plain(1460 * 10 + 1, DEFAULT_MTU);
        assert_eq!(q.packets, 11);
    }

    #[test]
    fn jumbo_frames_reduce_packet_count() {
        let std = SegmentPlan::plain(65536, 1500);
        let jumbo = SegmentPlan::plain(65536, 9000);
        assert!(jumbo.packets < std.packets / 5);
        assert!(jumbo.efficiency() > std.efficiency());
    }

    #[test]
    #[should_panic(expected = "MTU too small")]
    fn degenerate_mtu_panics() {
        let _ = SegmentPlan::plain(100, 40);
    }

    #[test]
    fn streaming_amortizes_option_overhead() {
        let plain = SegmentPlan::streaming(65536, DEFAULT_MTU, 0);
        let sais = SegmentPlan::streaming(65536, DEFAULT_MTU, 4);
        // 64 KB ≈ 45 segments either way; the option costs ~4 B/packet,
        // about 0.27 % of wire bytes, with no +1-packet quantization.
        assert_eq!(plain.packets, 45);
        assert_eq!(sais.packets, 45);
        let overhead = sais.wire_bytes as f64 / plain.wire_bytes as f64 - 1.0;
        assert!(overhead > 0.0 && overhead < 0.004, "overhead {overhead}");
    }

    #[test]
    fn streaming_tiny_payload_floors() {
        let p = SegmentPlan::streaming(1, DEFAULT_MTU, 4);
        assert_eq!(p.packets, 1);
        assert!(p.wire_bytes >= ETH_OVERHEAD + 24 + TCP_HEADER);
    }
}
