//! Point-to-point links and switch ports.
//!
//! A link is serialization (bandwidth) plus propagation delay. The testbed
//! fabric — GigE NICs into a Cisco Catalyst 4948 — is modelled as
//! store-and-forward: a strip is fully serialized onto the sender's link,
//! crosses the switch with a fixed forwarding latency, then queues for the
//! receiver's (possibly slower or contended) port.

use sais_sim::{RateResource, SimDuration, SimTime};

/// A unidirectional link: FIFO serialization at a rate, then propagation.
#[derive(Debug, Clone)]
pub struct Link {
    pipe: RateResource,
    propagation: SimDuration,
}

impl Link {
    /// A link of `bits_per_sec` with the given propagation delay.
    pub fn new(bits_per_sec: f64, propagation: SimDuration) -> Self {
        Link {
            pipe: RateResource::from_bits_per_sec(bits_per_sec),
            propagation,
        }
    }

    /// Gigabit Ethernet through a LAN switch: 1 Gb/s, ~20 µs one-way
    /// (cable + PHY + forwarding).
    pub fn gige() -> Self {
        Link::new(1e9, SimDuration::from_micros(20))
    }

    /// Send `bytes` starting no earlier than `now`; returns the time the
    /// last byte arrives at the far end.
    pub fn send(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let (_, serialized) = self.pipe.transfer(now, bytes);
        serialized + self.propagation
    }

    /// When the sender-side pipe frees up.
    pub fn busy_until(&self) -> SimTime {
        self.pipe.busy_until()
    }

    /// Bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.pipe.bytes_moved()
    }

    /// Pipe utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.pipe.utilization(horizon)
    }

    /// Link capacity in bytes/second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.pipe.bytes_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_plus_propagation() {
        let mut l = Link::new(1e9, SimDuration::from_micros(20));
        // 125000 bytes at 125 MB/s = 1 ms serialization + 20 us.
        let arrive = l.send(SimTime::ZERO, 125_000);
        assert_eq!(arrive, SimTime::from_micros(1020));
    }

    #[test]
    fn back_to_back_sends_pipeline() {
        let mut l = Link::new(1e9, SimDuration::from_micros(20));
        let a1 = l.send(SimTime::ZERO, 125_000);
        let a2 = l.send(SimTime::ZERO, 125_000);
        // Second message serializes after the first but the propagation
        // overlaps: arrivals are 1 ms apart.
        assert_eq!(a2 - a1, SimDuration::from_millis(1));
        assert_eq!(l.bytes_moved(), 250_000);
    }

    #[test]
    fn idle_gap_not_counted_busy() {
        let mut l = Link::gige();
        l.send(SimTime::ZERO, 125_000); // 1 ms busy
        l.send(SimTime::from_millis(9), 125_000); // 1 ms busy
        let u = l.utilization(SimTime::from_millis(10));
        assert!((u - 0.2).abs() < 1e-9);
    }
}
