//! Flow identification (the connection 4-tuple), for RSS-style policies
//! and NIC-bond port selection.

/// A TCP flow identifier derived from the 4-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub u64);

impl FlowId {
    /// The flow id a real RSS-capable NIC computes: the Toeplitz hash of
    /// the receive tuple under the standard Microsoft key. This is what
    /// the simulated NIC uses for queue/port selection and what the
    /// `FlowHash` steering baseline spreads on.
    pub fn rss(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> Self {
        FlowId(crate::rss::hash_v4_tcp(
            &crate::rss::MICROSOFT_KEY,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
        ) as u64)
    }

    /// Hash the 4-tuple into a stable flow id. Symmetric hashing is *not*
    /// used — direction matters (we steer on receive).
    pub fn from_tuple(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> Self {
        let a = ((src_ip as u64) << 32) | dst_ip as u64;
        let b = ((src_port as u64) << 16) | dst_port as u64;
        // Two rounds of SplitMix-style mixing.
        let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FlowId(x ^ (x >> 31))
    }

    /// Raw value.
    pub fn value(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_tuple_sensitive() {
        let f = FlowId::from_tuple(0x0A000001, 0x0A000002, 40000, 3334);
        assert_eq!(f, FlowId::from_tuple(0x0A000001, 0x0A000002, 40000, 3334));
        assert_ne!(f, FlowId::from_tuple(0x0A000001, 0x0A000002, 40001, 3334));
        assert_ne!(f, FlowId::from_tuple(0x0A000002, 0x0A000001, 40000, 3334));
        assert_ne!(
            f,
            FlowId::from_tuple(0x0A000001, 0x0A000002, 3334, 40000),
            "directional"
        );
    }

    #[test]
    fn spreads_over_small_modulus() {
        // 48 server flows should spread reasonably over 8 cores.
        let mut buckets = [0u32; 8];
        for s in 0..48u32 {
            let f = FlowId::from_tuple(0x0A00_0100 + s, 0x0A000001, 50000, 3334);
            buckets[(f.value() % 8) as usize] += 1;
        }
        assert!(
            buckets.iter().all(|&b| b >= 1),
            "no empty bucket: {buckets:?}"
        );
        assert!(
            buckets.iter().all(|&b| b <= 14),
            "no huge bucket: {buckets:?}"
        );
    }

    #[test]
    fn rss_flow_matches_toeplitz() {
        let f = FlowId::rss(0x0A010003, 0x0A000001, 3334, 50_000);
        let h = crate::rss::hash_v4_tcp(
            &crate::rss::MICROSOFT_KEY,
            0x0A010003,
            0x0A000001,
            3334,
            50_000,
        );
        assert_eq!(f.value(), h as u64);
        assert_ne!(f, FlowId::rss(0x0A010004, 0x0A000001, 3334, 50_000));
    }
}
