//! Receive-Side Scaling: the Toeplitz hash and indirection table.
//!
//! The related work the paper positions against (Intel 82575/82576/82598/
//! 82599 controllers, RFS/XPS) steers flows with **RSS**: a Toeplitz hash
//! of the connection tuple indexes a 128-entry indirection table of queue
//! (and therefore core) assignments. It keeps a flow's packets together —
//! but on a *hash-chosen* core, not the data's consumer, which is exactly
//! the gap SAIs fills. This module implements the real algorithm,
//! validated against the canonical Microsoft/Intel test vectors, and backs
//! the `FlowHash` steering baseline.

/// The de-facto standard 40-byte RSS key (Microsoft's verification key,
/// shipped as the default by most NICs and OSes).
pub const MICROSOFT_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Toeplitz hash of `input` under `key`. For each set bit of the input
/// (MSB first), XOR in the 32-bit window of the key starting at that bit.
pub fn toeplitz(key: &[u8; 40], input: &[u8]) -> u32 {
    assert!(
        input.len() <= 36,
        "input longer than the key can window (36 bytes max)"
    );
    let mut result = 0u32;
    // Current 32-bit window of the key, advanced one bit per input bit.
    let mut window = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
    let mut next_byte = 4usize;
    let mut bits_used = 0u32;
    for &byte in input {
        for bit in (0..8).rev() {
            if byte >> bit & 1 == 1 {
                result ^= window;
            }
            // Slide the window left by one bit, pulling in the next key bit.
            let next_bit = if next_byte < key.len() {
                key[next_byte] >> (7 - (bits_used % 8)) & 1
            } else {
                0
            };
            window = (window << 1) | next_bit as u32;
            bits_used += 1;
            if bits_used.is_multiple_of(8) {
                next_byte += 1;
            }
        }
    }
    result
}

/// Hash an IPv4 TCP 4-tuple the way RSS does: `src_ip · dst_ip ·
/// src_port · dst_port`, all big-endian.
pub fn hash_v4_tcp(key: &[u8; 40], src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> u32 {
    let mut input = [0u8; 12];
    input[0..4].copy_from_slice(&src_ip.to_be_bytes());
    input[4..8].copy_from_slice(&dst_ip.to_be_bytes());
    input[8..10].copy_from_slice(&src_port.to_be_bytes());
    input[10..12].copy_from_slice(&dst_port.to_be_bytes());
    toeplitz(key, &input)
}

/// The RSS indirection table: low bits of the hash pick an entry, the
/// entry names the receive queue / core.
#[derive(Debug, Clone)]
pub struct IndirectionTable {
    entries: Vec<u8>,
}

impl IndirectionTable {
    /// The standard 128-entry table, spreading `queues` queues round-robin
    /// (the default programming of every driver).
    pub fn balanced(queues: usize) -> Self {
        assert!((1..=256).contains(&queues));
        IndirectionTable {
            entries: (0..128).map(|i| (i % queues) as u8).collect(),
        }
    }

    /// The queue for a given hash value.
    pub fn lookup(&self, hash: u32) -> usize {
        self.entries[(hash as usize) & (self.entries.len() - 1)] as usize
    }

    /// Reprogram one entry (what `ethtool -X` edits).
    pub fn set(&mut self, index: usize, queue: u8) {
        self.entries[index] = queue;
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Tables are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    /// The canonical verification vectors from the Microsoft RSS
    /// specification (also reprinted in Intel's 82599 datasheet).
    #[test]
    fn microsoft_ipv4_tcp_vectors() {
        let k = &MICROSOFT_KEY;
        // (dst, src, dst_port, src_port) → expected hash, per the spec's
        // table (input order on the wire is src..dst..srcport..dstport).
        let cases = [
            // 66.9.149.187:2794 → 161.142.100.80:1766
            (
                ip(66, 9, 149, 187),
                2794,
                ip(161, 142, 100, 80),
                1766,
                0x51cc_c178u32,
            ),
            // 199.92.111.2:14230 → 65.69.140.83:4739
            (
                ip(199, 92, 111, 2),
                14230,
                ip(65, 69, 140, 83),
                4739,
                0xc626_b0ea,
            ),
            // 24.19.198.95:12898 → 12.22.207.184:38024
            (
                ip(24, 19, 198, 95),
                12898,
                ip(12, 22, 207, 184),
                38024,
                0x5c2b_394a,
            ),
            // 38.27.205.30:48228 → 209.142.163.6:2217
            (
                ip(38, 27, 205, 30),
                48228,
                ip(209, 142, 163, 6),
                2217,
                0xafc7_327f,
            ),
            // 153.39.163.191:44251 → 202.188.127.2:1303
            (
                ip(153, 39, 163, 191),
                44251,
                ip(202, 188, 127, 2),
                1303,
                0x10e8_28a2,
            ),
        ];
        for (src, sport, dst, dport, expect) in cases {
            let h = hash_v4_tcp(k, src, dst, sport, dport);
            assert_eq!(h, expect, "tuple {src:08x}:{sport} -> {dst:08x}:{dport}");
        }
    }

    #[test]
    fn hash_is_deterministic_and_tuple_sensitive() {
        let k = &MICROSOFT_KEY;
        let a = hash_v4_tcp(k, 1, 2, 3, 4);
        assert_eq!(a, hash_v4_tcp(k, 1, 2, 3, 4));
        assert_ne!(a, hash_v4_tcp(k, 1, 2, 3, 5));
        assert_ne!(a, hash_v4_tcp(k, 2, 1, 3, 4));
    }

    #[test]
    fn empty_input_hashes_to_zero() {
        assert_eq!(toeplitz(&MICROSOFT_KEY, &[]), 0);
    }

    #[test]
    #[should_panic(expected = "36 bytes")]
    fn oversized_input_rejected() {
        let _ = toeplitz(&MICROSOFT_KEY, &[0u8; 37]);
    }

    #[test]
    fn indirection_table_spreads_and_reprograms() {
        let mut t = IndirectionTable::balanced(8);
        assert_eq!(t.len(), 128);
        assert!(!t.is_empty());
        // Round-robin default covers all queues.
        let mut seen = [false; 8];
        for h in 0..128u32 {
            seen[t.lookup(h)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // High bits are ignored (masked lookup).
        assert_eq!(t.lookup(5), t.lookup(5 + (1 << 20)));
        // ethtool-style reprogramming.
        t.set(5, 7);
        assert_eq!(t.lookup(5), 7);
    }

    #[test]
    fn real_server_flows_spread_over_queues() {
        // 48 PVFS servers talking to one client: the indirection table
        // spreads the flows — but onto hash-chosen cores, irrespective of
        // which core wants the data. (The SAIs gap, in one assertion.)
        let t = IndirectionTable::balanced(8);
        let client = ip(10, 0, 0, 1);
        let mut per_queue = [0u32; 8];
        for s in 0..48u32 {
            let server = ip(10, 1, 0, 0) + s;
            let h = hash_v4_tcp(&MICROSOFT_KEY, server, client, 3334, 50_000);
            per_queue[t.lookup(h)] += 1;
        }
        assert!(per_queue.iter().all(|&n| n >= 1), "{per_queue:?}");
        assert!(per_queue.iter().all(|&n| n <= 14), "{per_queue:?}");
    }
}
