//! CRC-32 (IEEE 802.3), as used by the Ethernet frame check sequence.
//!
//! Table-driven, reflected polynomial `0xEDB88320`, computed at first use.
//! Implemented locally because frame integrity is part of the modelled NIC
//! receive path: a frame whose FCS fails never reaches SrcParser.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// CRC-32/IEEE of `data` (init `0xFFFFFFFF`, final XOR `0xFFFFFFFF`,
/// reflected input/output — the Ethernet FCS convention).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 state for streaming use.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finish and return the checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let oneshot = crc32(&data);
        let mut inc = Crc32::new();
        for chunk in data.chunks(97) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish(), oneshot);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"source-aware interrupt scheduling".to_vec();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), good, "flip at {byte}.{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
