//! Ethernet II framing with a real frame check sequence.
//!
//! The simulated NIC receive path is byte-faithful for the first frame of
//! every strip: the server's `HintCapsuler` output rides inside an actual
//! Ethernet frame, the client NIC checks the FCS, and only then does
//! `SrcParser` see the IP header — so every integrity layer a corrupted
//! hint could hide behind is really there.

use crate::crc32::crc32;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// A locally-administered address derived from a node id — handy for
    /// giving every simulated node a distinct, stable MAC.
    pub fn for_node(id: u32) -> Self {
        let b = id.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x5A, b[0], b[1], b[2], b[3]])
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// Minimum Ethernet payload (frames are padded up to this).
pub const MIN_PAYLOAD: usize = 46;

/// A decoded Ethernet II frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType.
    pub ethertype: u16,
    /// Payload (padding stripped only if the caller knows the inner
    /// length; kept verbatim here).
    pub payload: Vec<u8>,
}

/// Frame decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than header + FCS.
    Runt,
    /// FCS mismatch — the NIC drops the frame silently in hardware.
    BadFcs {
        /// FCS found on the wire.
        found: u32,
        /// FCS computed over the frame.
        computed: u32,
    },
}

impl EthernetFrame {
    /// Build an IPv4 frame.
    pub fn ipv4(dst: MacAddr, src: MacAddr, payload: Vec<u8>) -> Self {
        EthernetFrame {
            dst,
            src,
            ethertype: ETHERTYPE_IPV4,
            payload,
        }
    }

    /// Serialize with padding and FCS.
    pub fn encode(&self) -> Vec<u8> {
        let payload_len = self.payload.len().max(MIN_PAYLOAD);
        let mut out = Vec::with_capacity(14 + payload_len + 4);
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out.resize(14 + payload_len, 0); // pad runts
        let fcs = crc32(&out);
        out.extend_from_slice(&fcs.to_le_bytes());
        out
    }

    /// Parse and verify a wire frame.
    pub fn decode(bytes: &[u8]) -> Result<EthernetFrame, FrameError> {
        if bytes.len() < 14 + MIN_PAYLOAD + 4 {
            return Err(FrameError::Runt);
        }
        let (body, fcs_bytes) = bytes.split_at(bytes.len() - 4);
        let found = u32::from_le_bytes(fcs_bytes.try_into().expect("4 bytes"));
        let computed = crc32(body);
        if found != computed {
            return Err(FrameError::BadFcs { found, computed });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&body[0..6]);
        src.copy_from_slice(&body[6..12]);
        let ethertype = u16::from_be_bytes([body[12], body[13]]);
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: body[14..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> EthernetFrame {
        EthernetFrame::ipv4(MacAddr::for_node(1), MacAddr::for_node(2), vec![0xAB; 100])
    }

    #[test]
    fn roundtrip() {
        let f = frame();
        let wire = f.encode();
        let back = EthernetFrame::decode(&wire).unwrap();
        assert_eq!(back.dst, f.dst);
        assert_eq!(back.src, f.src);
        assert_eq!(back.ethertype, ETHERTYPE_IPV4);
        assert_eq!(&back.payload[..100], &f.payload[..]);
    }

    #[test]
    fn runt_padding_roundtrips() {
        let f = EthernetFrame::ipv4(MacAddr::for_node(1), MacAddr::for_node(2), vec![1, 2, 3]);
        let wire = f.encode();
        assert_eq!(wire.len(), 14 + MIN_PAYLOAD + 4);
        let back = EthernetFrame::decode(&wire).unwrap();
        assert_eq!(&back.payload[..3], &[1, 2, 3]);
        assert!(back.payload[3..].iter().all(|&b| b == 0), "zero padding");
    }

    #[test]
    fn corruption_is_caught_anywhere() {
        let wire = frame().encode();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x10;
            assert!(
                matches!(EthernetFrame::decode(&bad), Err(FrameError::BadFcs { .. })),
                "flip at byte {i} undetected"
            );
        }
    }

    #[test]
    fn runt_rejected() {
        assert_eq!(EthernetFrame::decode(&[0u8; 20]), Err(FrameError::Runt));
    }

    #[test]
    fn mac_display_and_derivation() {
        let m = MacAddr::for_node(0x00C7);
        assert_eq!(format!("{m}"), "02:5a:00:00:00:c7");
        assert_ne!(MacAddr::for_node(1), MacAddr::for_node(2));
        assert_eq!(m.0[0] & 0x01, 0, "unicast");
        assert_eq!(m.0[0] & 0x02, 0x02, "locally administered");
    }
}
