//! Byte-faithful IPv4 headers with the SAIs affinity option.
//!
//! The paper (Fig. 4) reserves the IP options field to convey
//! `aff_core_id`: an 8-bit "simple option" whose sub-fields are
//!
//! ```text
//!   bit 7      : copied       = 1
//!   bits 6..5  : option class = 01
//!   bits 4..0  : option number = aff_core_id   (≤ 32 cores)
//! ```
//!
//! so the option byte is `0xA0 | core_id`. Options are terminated by EOL
//! (`0x00`) and the header is padded to a 32-bit boundary, per RFC 791.

use bytes::{Buf, BufMut};

/// IPv4 protocol number for TCP.
pub const PROTO_TCP: u8 = 6;

/// Mask selecting the copied+class bits of an option type byte.
const OPT_CLASS_MASK: u8 = 0b1110_0000;
/// The SAIs option's copied+class pattern: copied=1, class=01.
const OPT_SAIS_PATTERN: u8 = 0b1010_0000;
/// Mask selecting the 5-bit option number (the core id).
const OPT_NUMBER_MASK: u8 = 0b0001_1111;

/// An IPv4 option as used on the SAIs path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpOption {
    /// End of option list (`0x00`).
    Eol,
    /// No-operation padding (`0x01`).
    Nop,
    /// The SAIs affinity hint: the requesting core's id (0–31).
    SaisAffinity(u8),
    /// Any other option, kept opaque: `(type, data)` with standard TLV
    /// length handling.
    Other(u8, Vec<u8>),
}

/// Errors from header parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Fewer bytes than the fixed header.
    Truncated,
    /// Version field is not 4.
    BadVersion(u8),
    /// IHL smaller than 5 or larger than the buffer.
    BadIhl(u8),
    /// Header checksum mismatch.
    BadChecksum {
        /// Checksum found in the header.
        found: u16,
        /// Checksum computed over the header.
        computed: u16,
    },
    /// An option ran past the header end.
    BadOption,
}

/// A decoded IPv4 header (fields relevant to the simulation).
///
/// ```
/// use sais_net::Ipv4Header;
///
/// // HintCapsuler stamps the requesting core into the response header…
/// let wire = Ipv4Header::tcp(0x0A010003, 0x0A000001, 7, 1452)
///     .with_affinity(6)
///     .encode();
/// // …and SrcParser recovers it on the client, checksum-verified.
/// let parsed = Ipv4Header::decode(&wire).unwrap();
/// assert_eq!(parsed.affinity_hint(), Some(6));
/// assert_eq!(wire[20], 0xA0 | 6, "copied=1, class=01, number=core");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Payload protocol.
    pub protocol: u8,
    /// TTL.
    pub ttl: u8,
    /// Identification field (we use it for strip sequence diagnostics).
    pub ident: u16,
    /// Payload length in bytes (total length − header length).
    pub payload_len: u16,
    /// Options, in order.
    pub options: Vec<IpOption>,
}

impl Ipv4Header {
    /// A plain TCP header with no options.
    pub fn tcp(src: u32, dst: u32, ident: u16, payload_len: u16) -> Self {
        Ipv4Header {
            src,
            dst,
            protocol: PROTO_TCP,
            ttl: 64,
            ident,
            payload_len,
            options: Vec::new(),
        }
    }

    /// Attach the SAIs affinity option (HintCapsuler's job on the server).
    ///
    /// # Panics
    /// If `core_id` ≥ 32 — the 5-bit option number cannot express it. The
    /// paper notes this limit: "a maximum 2⁵ = 32 cores could be identified
    /// by SAIs".
    pub fn with_affinity(mut self, core_id: u8) -> Self {
        assert!(core_id < 32, "SAIs option encodes at most 32 cores");
        self.options.push(IpOption::SaisAffinity(core_id));
        self
    }

    /// Extract the affinity hint if present and well-formed (SrcParser's
    /// job in the client NIC driver).
    pub fn affinity_hint(&self) -> Option<u8> {
        self.options.iter().find_map(|o| match o {
            IpOption::SaisAffinity(core) => Some(*core),
            _ => None,
        })
    }

    /// Encoded length of the options area including EOL/padding, in bytes.
    fn options_wire_len(&self) -> usize {
        let mut n = 0usize;
        for o in &self.options {
            n += match o {
                IpOption::Eol => 1,
                IpOption::Nop => 1,
                IpOption::SaisAffinity(_) => 1,
                IpOption::Other(_, data) => 2 + data.len(),
            };
        }
        if n == 0 {
            return 0;
        }
        // EOL terminator then pad to a 32-bit boundary.
        n += 1;
        (n + 3) & !3
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        20 + self.options_wire_len()
    }

    /// Serialize into bytes (with a correct checksum).
    pub fn encode(&self) -> Vec<u8> {
        let hlen = self.header_len();
        assert!(hlen <= 60, "IPv4 header cannot exceed 60 bytes");
        assert_eq!(hlen % 4, 0);
        let ihl = (hlen / 4) as u8;
        let total_len = hlen as u16 + self.payload_len;
        let mut buf = Vec::with_capacity(hlen);
        buf.put_u8(0x40 | ihl); // version 4 + IHL
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(total_len);
        buf.put_u16(self.ident);
        buf.put_u16(0x4000); // flags: DF, fragment offset 0
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol);
        buf.put_u16(0); // checksum placeholder
        buf.put_u32(self.src);
        buf.put_u32(self.dst);
        for o in &self.options {
            match o {
                IpOption::Eol => buf.put_u8(0x00),
                IpOption::Nop => buf.put_u8(0x01),
                IpOption::SaisAffinity(core) => {
                    buf.put_u8(OPT_SAIS_PATTERN | (core & OPT_NUMBER_MASK))
                }
                IpOption::Other(ty, data) => {
                    buf.put_u8(*ty);
                    buf.put_u8(2 + data.len() as u8);
                    buf.extend_from_slice(data);
                }
            }
        }
        if !self.options.is_empty() {
            buf.put_u8(0x00); // EOL
            while buf.len() < hlen {
                buf.put_u8(0x00);
            }
        }
        debug_assert_eq!(buf.len(), hlen);
        let ck = checksum(&buf);
        buf[10] = (ck >> 8) as u8;
        buf[11] = (ck & 0xFF) as u8;
        buf
    }

    /// Parse a header from bytes, verifying the checksum.
    pub fn decode(bytes: &[u8]) -> Result<Ipv4Header, ParseError> {
        if bytes.len() < 20 {
            return Err(ParseError::Truncated);
        }
        let version = bytes[0] >> 4;
        if version != 4 {
            return Err(ParseError::BadVersion(version));
        }
        let ihl = bytes[0] & 0x0F;
        let hlen = ihl as usize * 4;
        if ihl < 5 || bytes.len() < hlen {
            return Err(ParseError::BadIhl(ihl));
        }
        let computed = checksum(&zeroed_checksum(&bytes[..hlen]));
        let found = u16::from_be_bytes([bytes[10], bytes[11]]);
        if computed != found {
            return Err(ParseError::BadChecksum { found, computed });
        }
        let mut view = &bytes[..hlen];
        view.advance(2);
        let total_len = view.get_u16();
        let ident = view.get_u16();
        view.advance(2); // flags/fragment
        let ttl = view.get_u8();
        let protocol = view.get_u8();
        view.advance(2); // checksum
        let src = view.get_u32();
        let dst = view.get_u32();
        let mut options = Vec::new();
        let mut opt = &bytes[20..hlen];
        while !opt.is_empty() {
            let ty = opt[0];
            match ty {
                0x00 => break, // EOL: rest is padding
                0x01 => {
                    options.push(IpOption::Nop);
                    opt = &opt[1..];
                }
                t if t & OPT_CLASS_MASK == OPT_SAIS_PATTERN => {
                    options.push(IpOption::SaisAffinity(t & OPT_NUMBER_MASK));
                    opt = &opt[1..];
                }
                t => {
                    // Standard TLV option.
                    if opt.len() < 2 {
                        return Err(ParseError::BadOption);
                    }
                    let len = opt[1] as usize;
                    if len < 2 || len > opt.len() {
                        return Err(ParseError::BadOption);
                    }
                    options.push(IpOption::Other(t, opt[2..len].to_vec()));
                    opt = &opt[len..];
                }
            }
        }
        let payload_len = total_len.saturating_sub(hlen as u16);
        Ok(Ipv4Header {
            src,
            dst,
            protocol,
            ttl,
            ident,
            payload_len,
            options,
        })
    }
}

/// RFC 1071 internet checksum over `data`.
fn checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Copy of the header with the checksum field zeroed, for verification.
fn zeroed_checksum(header: &[u8]) -> Vec<u8> {
    let mut v = header.to_vec();
    v[10] = 0;
    v[11] = 0;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_header_roundtrip() {
        let h = Ipv4Header::tcp(0x0A000001, 0x0A000002, 42, 1460);
        let bytes = h.encode();
        assert_eq!(bytes.len(), 20);
        let back = Ipv4Header::decode(&bytes).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn sais_option_byte_matches_figure_4() {
        // copied=1, class=01, number=core → 0xA0 | core.
        let h = Ipv4Header::tcp(1, 2, 0, 100).with_affinity(5);
        let bytes = h.encode();
        // Header grows to 24 bytes (option + EOL + pad).
        assert_eq!(bytes.len(), 24);
        assert_eq!(bytes[0] & 0x0F, 6, "IHL = 6 words");
        assert_eq!(bytes[20], 0xA5);
        assert_eq!(bytes[21], 0x00, "EOL terminator");
    }

    #[test]
    fn affinity_roundtrip_all_cores() {
        for core in 0..32u8 {
            let h = Ipv4Header::tcp(1, 2, core as u16, 64).with_affinity(core);
            let back = Ipv4Header::decode(&h.encode()).unwrap();
            assert_eq!(back.affinity_hint(), Some(core));
        }
    }

    #[test]
    #[should_panic(expected = "at most 32 cores")]
    fn affinity_core_out_of_range_panics() {
        let _ = Ipv4Header::tcp(1, 2, 0, 64).with_affinity(32);
    }

    #[test]
    fn hint_absent_on_plain_header() {
        let h = Ipv4Header::tcp(1, 2, 0, 64);
        assert_eq!(h.affinity_hint(), None);
        assert_eq!(
            Ipv4Header::decode(&h.encode()).unwrap().affinity_hint(),
            None
        );
    }

    #[test]
    fn checksum_detects_corruption() {
        let h = Ipv4Header::tcp(1, 2, 0, 64).with_affinity(3);
        let mut bytes = h.encode();
        bytes[20] ^= 0x04; // flip a bit inside the option
        match Ipv4Header::decode(&bytes) {
            Err(ParseError::BadChecksum { .. }) => {}
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn nop_and_tlv_options_coexist_with_sais() {
        let mut h = Ipv4Header::tcp(9, 8, 7, 6);
        h.options.push(IpOption::Nop);
        h.options.push(IpOption::Other(0x44, vec![1, 2, 3, 4])); // timestamp-ish
        h = h.with_affinity(17);
        let back = Ipv4Header::decode(&h.encode()).unwrap();
        assert_eq!(back.affinity_hint(), Some(17));
        assert_eq!(back.options.len(), 3);
    }

    #[test]
    fn truncated_and_bad_version_rejected() {
        assert_eq!(Ipv4Header::decode(&[0; 10]), Err(ParseError::Truncated));
        let h = Ipv4Header::tcp(1, 2, 0, 64);
        let mut bytes = h.encode();
        bytes[0] = 0x65; // version 6
        assert_eq!(Ipv4Header::decode(&bytes), Err(ParseError::BadVersion(6)));
    }

    #[test]
    fn bad_tlv_length_rejected() {
        let h = Ipv4Header::tcp(1, 2, 0, 64).with_affinity(1);
        let mut bytes = h.encode();
        bytes[20] = 0x44; // turn the SAIs option into a TLV type...
        bytes[21] = 40; // ...with a length that runs off the header
                        // Fix the checksum so we reach option parsing.
        bytes[10] = 0;
        bytes[11] = 0;
        let ck = checksum(&bytes);
        bytes[10] = (ck >> 8) as u8;
        bytes[11] = (ck & 0xFF) as u8;
        assert_eq!(Ipv4Header::decode(&bytes), Err(ParseError::BadOption));
    }

    #[test]
    fn checksum_reference_vector() {
        // RFC 1071 example-style check: checksum of a known header.
        let h = Ipv4Header::tcp(0xC0A80001, 0xC0A800C7, 0, 0);
        let bytes = h.encode();
        // Verifying means the checksum over the full header is zero-sum.
        let computed = checksum(&zeroed_checksum(&bytes));
        let stored = u16::from_be_bytes([bytes[10], bytes[11]]);
        assert_eq!(computed, stored);
    }
}
