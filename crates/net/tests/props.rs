//! Property tests for the wire formats.

use proptest::prelude::*;
use sais_net::{
    simulate_transfer, EthernetFrame, FrameError, IpOption, Ipv4Header, ParseError, PipeFaults,
    PodFrame, SegmentPlan, TcpReceiver, TcpSender,
};
use sais_sim::{SimDuration, SimRng, SimTime};
use std::collections::VecDeque;

fn arb_options() -> impl Strategy<Value = Vec<IpOption>> {
    proptest::collection::vec(
        prop_oneof![
            Just(IpOption::Nop),
            (0u8..32).prop_map(IpOption::SaisAffinity),
            // TLV options with type bytes outside the SAIs class pattern
            // and outside EOL/NOP.
            (2u8..=0x7F, proptest::collection::vec(any::<u8>(), 0..6))
                .prop_map(|(t, d)| IpOption::Other(t, d)),
        ],
        0..4,
    )
}

proptest! {
    /// encode ∘ decode = id for arbitrary headers whose options fit.
    #[test]
    fn header_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        ident in any::<u16>(),
        payload in 0u16..=9000,
        ttl in 1u8..=255,
        options in arb_options(),
    ) {
        let mut h = Ipv4Header::tcp(src, dst, ident, payload);
        h.ttl = ttl;
        h.options = options;
        if h.header_len() > 60 {
            // Oversized option sets are rejected at encode time; skip.
            return Ok(());
        }
        let bytes = h.encode();
        prop_assert_eq!(bytes.len(), h.header_len());
        let back = Ipv4Header::decode(&bytes).unwrap();
        prop_assert_eq!(back.src, h.src);
        prop_assert_eq!(back.dst, h.dst);
        prop_assert_eq!(back.ident, h.ident);
        prop_assert_eq!(back.ttl, h.ttl);
        prop_assert_eq!(back.payload_len, h.payload_len);
        prop_assert_eq!(back.affinity_hint(), h.affinity_hint());
        prop_assert_eq!(back.options, h.options);
    }

    /// Any single-bit corruption of an encoded header is either caught by
    /// the checksum or still yields a parse — never a panic.
    #[test]
    fn corruption_never_panics(
        core in 0u8..32,
        bit in 0usize..(24 * 8),
        payload in 0u16..2000,
    ) {
        let h = Ipv4Header::tcp(0x0A000001, 0x0A000002, 7, payload).with_affinity(core);
        let mut bytes = h.encode();
        let byte = bit / 8;
        if byte < bytes.len() {
            bytes[byte] ^= 1 << (bit % 8);
        }
        match Ipv4Header::decode(&bytes) {
            Ok(_) => {} // corruption in a bit the checksum misses is possible only
                        // if it cancelled — accept any clean parse
            Err(ParseError::BadChecksum { .. })
            | Err(ParseError::BadVersion(_))
            | Err(ParseError::BadIhl(_))
            | Err(ParseError::BadOption)
            | Err(ParseError::Truncated) => {}
        }
    }

    /// Segmentation conserves payload and never produces zero packets.
    #[test]
    fn segmentation_conserves(payload in 0u64..10_000_000, mtu in 576u64..9001, opts in 0u64..40) {
        let plan = SegmentPlan::new(payload, mtu, opts);
        prop_assert!(plan.packets >= 1);
        prop_assert_eq!(plan.payload, payload);
        prop_assert!(plan.wire_bytes >= payload);
        // Packets × MSS covers the payload, with less than one MSS slack.
        prop_assert!(plan.packets * plan.mss >= payload);
        if payload > 0 {
            prop_assert!((plan.packets - 1) * plan.mss < payload);
        }
    }
}

fn arb_pod() -> impl Strategy<Value = PodFrame> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        0u16..=9000,
        proptest::option::of(0u8..32),
    )
        .prop_map(|(src_ip, dst_ip, ident, payload_len, aff_core)| PodFrame {
            src_ip,
            dst_ip,
            ident,
            payload_len,
            aff_core,
        })
}

proptest! {
    /// The fast path's contract: for every representable [`PodFrame`], the
    /// materialized wire frame decodes back (valid FCS, valid IP checksum)
    /// to exactly the POD's fields, and the byte-level affinity hint — what
    /// `SrcParser` reads — equals the POD's. This is the equivalence that
    /// lets the steady state skip encode/decode entirely.
    #[test]
    fn pod_frame_round_trips_through_wire(pod in arb_pod()) {
        let wire = pod.materialize();
        prop_assert_eq!(&wire, &pod.materialize(), "materialization is deterministic");
        let frame = EthernetFrame::decode(&wire).expect("FCS must validate");
        let hdr = Ipv4Header::decode(&frame.payload).expect("checksum must validate");
        prop_assert_eq!(hdr.src, pod.src_ip);
        prop_assert_eq!(hdr.dst, pod.dst_ip);
        prop_assert_eq!(hdr.ident, pod.ident);
        prop_assert_eq!(hdr.payload_len, pod.payload_len);
        prop_assert_eq!(hdr.affinity_hint(), pod.hint());
        // The embedded header is bit-identical to encoding the POD's header
        // directly (the frame payload may extend past it with Ethernet
        // minimum-size padding), so fault injection edits the same bytes
        // either way.
        prop_assert!(frame.payload.starts_with(&pod.header().encode()));
    }

    /// Corruption verdicts survive the fast path: flipping any single bit
    /// of a materialized frame is always caught by the Ethernet FCS
    /// (CRC32 detects all single-bit errors), exactly as it was when the
    /// bytes were stored instead of rebuilt.
    #[test]
    fn pod_frame_corruption_is_always_detected(pod in arb_pod(), raw_bit in any::<u32>()) {
        let mut wire = pod.materialize();
        let nbits = wire.len() * 8;
        let bit = raw_bit as usize % nbits;
        wire[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            matches!(EthernetFrame::decode(&wire), Err(FrameError::BadFcs { .. })),
            "single-bit corruption at bit {bit} must fail the FCS"
        );
    }
}

proptest! {
    /// TCP-lite delivers every segment exactly once for any loss
    /// probability and seed (capped so the test converges quickly).
    #[test]
    fn tcp_delivers_under_any_loss(total in 1u64..500, loss in 0.0f64..0.35, seed in any::<u64>()) {
        let rtt = SimDuration::from_micros(200);
        let mut snd = TcpSender::new(total, SimDuration::from_millis(2));
        let mut rcv = TcpReceiver::new();
        let mut rng = SimRng::new(seed);
        let mut now = SimTime::ZERO;
        let mut pipe: VecDeque<(SimTime, u64)> = VecDeque::new();
        let push = |pipe: &mut VecDeque<(SimTime, u64)>, rng: &mut SimRng, now: SimTime, segs: Vec<sais_net::tcp::Segment>| {
            for s in segs {
                if !rng.chance(loss) {
                    pipe.push_back((now + rtt, s.seq));
                }
            }
        };
        let first = snd.poll(now);
        push(&mut pipe, &mut rng, now, first);
        let mut guard = 0u64;
        while !snd.done() {
            guard += 1;
            prop_assert!(guard < 500_000, "did not converge (loss {loss})");
            match (pipe.front().copied(), snd.timer_deadline()) {
                (Some((a, _)), Some(d)) if a <= d => {
                    let (t, seq) = pipe.pop_front().unwrap();
                    now = t;
                    let ack = rcv.on_segment(seq);
                    let segs = snd.on_ack(now, ack);
                    push(&mut pipe, &mut rng, now, segs);
                }
                (_, Some(d)) => {
                    now = d;
                    let segs = snd.on_timeout(now);
                    push(&mut pipe, &mut rng, now, segs);
                }
                (Some(_), None) => {
                    let (t, seq) = pipe.pop_front().unwrap();
                    now = t;
                    let ack = rcv.on_segment(seq);
                    let segs = snd.on_ack(now, ack);
                    push(&mut pipe, &mut rng, now, segs);
                }
                (None, None) => prop_assert!(false, "deadlock"),
            }
        }
        prop_assert_eq!(rcv.delivered, total);
        prop_assert_eq!(rcv.ack(), total);
    }

    /// The faulty-pipe harness delivers every byte exactly once, in order,
    /// for any combination of loss, duplication and reordering: the
    /// receiver's cumulative ack reaches exactly `total`, duplicates are
    /// counted but never re-delivered, and a faulty pipe is never faster
    /// than a clean one.
    #[test]
    fn faulty_pipe_delivers_exactly_once_in_order(
        total in 1u64..400,
        loss in 0.0f64..0.3,
        duplication in 0.0f64..0.3,
        reorder in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let rtt = SimDuration::from_micros(200);
        let rto = SimDuration::from_millis(2);
        let faults = PipeFaults {
            loss,
            duplication,
            reorder,
            reorder_delay: SimDuration::from_micros(500),
        };
        let rep = simulate_transfer(total, rtt, rto, &faults, &mut SimRng::new(seed));
        // Exactly-once: the receiver's in-order delivery count is the
        // transfer size — no byte missing, none double-counted.
        prop_assert_eq!(rep.delivered, total);
        prop_assert!(rep.sent >= total, "every segment crosses at least once");
        let clean = simulate_transfer(
            total, rtt, rto, &PipeFaults::clean(), &mut SimRng::new(seed),
        );
        prop_assert_eq!(clean.retransmits, 0);
        prop_assert_eq!(clean.duplicates, 0);
        prop_assert!(rep.elapsed >= clean.elapsed, "faults never speed up a transfer");
    }
}
