//! Adversarial inputs for the option parser: the bytes a hostile or
//! broken middlebox could hand `SrcParser`. The contract under attack is
//! always the same — never panic, and when the SAIs option is damaged,
//! report "no tag" (or a typed error) instead of inventing a hint.

use sais_net::{IpOption, Ipv4Header, ParseError};

/// RFC 1071 checksum, reimplemented here so tests can re-seal headers
/// after deliberately corrupting them (the crate's own helper is private
/// on purpose — production code never fixes up a broken header).
fn fix_checksum(bytes: &mut [u8]) {
    bytes[10] = 0;
    bytes[11] = 0;
    let mut sum = 0u32;
    let mut chunks = bytes.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    let ck = !(sum as u16);
    bytes[10] = (ck >> 8) as u8;
    bytes[11] = (ck & 0xFF) as u8;
}

fn hinted_header() -> Vec<u8> {
    Ipv4Header::tcp(0x0A01_0003, 0x0A00_0001, 7, 1452)
        .with_affinity(6)
        .encode()
}

#[test]
fn truncated_buffers_never_panic() {
    let full = hinted_header();
    for cut in 0..full.len() {
        match Ipv4Header::decode(&full[..cut]) {
            Ok(h) => panic!("truncated to {cut} bytes but parsed: {h:?}"),
            Err(ParseError::Truncated) | Err(ParseError::BadIhl(_)) => {}
            Err(e) => panic!("truncation to {cut} bytes gave {e:?}"),
        }
    }
}

#[test]
fn header_longer_than_buffer_is_rejected() {
    // IHL claims 15 words (60 bytes) but only 24 bytes exist.
    let mut bytes = hinted_header();
    bytes[0] = 0x4F;
    fix_checksum(&mut bytes);
    assert_eq!(Ipv4Header::decode(&bytes), Err(ParseError::BadIhl(15)));
}

#[test]
fn wrong_class_bits_are_not_a_sais_option() {
    // Every copied/class pattern other than the SAIs one (copied=1,
    // class=01) must fall through to TLV handling — a lone byte with no
    // length is then a typed error, and a well-formed TLV parses as an
    // opaque option with no tag. Number bits stay 5 (id 5 here).
    for class_bits in [0x00u8, 0x20, 0x40, 0x60, 0x80, 0xC0, 0xE0] {
        let ty = class_bits | 5;
        if ty <= 0x01 {
            continue; // EOL/NOP encodings, tested elsewhere
        }
        // Lone type byte followed by the EOL terminator: TLV length would
        // be 0, which is invalid.
        let mut bytes = hinted_header();
        bytes[20] = ty;
        fix_checksum(&mut bytes);
        assert_eq!(
            Ipv4Header::decode(&bytes),
            Err(ParseError::BadOption),
            "class bits {class_bits:#04x}"
        );
        // Well-formed two-byte TLV of the same type: parses, but carries
        // no affinity tag.
        let mut bytes = hinted_header();
        bytes[20] = ty;
        bytes[21] = 2; // TLV length covering type+len only
        fix_checksum(&mut bytes);
        let h = Ipv4Header::decode(&bytes).expect("well-formed TLV parses");
        assert_eq!(h.affinity_hint(), None, "class bits {class_bits:#04x}");
        assert!(matches!(h.options[0], IpOption::Other(t, _) if t == ty));
    }
}

#[test]
fn option_numbers_cannot_exceed_31() {
    // The 5-bit number field makes core ids ≥ 32 unrepresentable: every
    // byte matching the SAIs pattern decodes to a hint below 32, so a
    // hostile header cannot smuggle an out-of-range core id past the
    // parser. (Steering against a machine with fewer cores is clamped
    // downstream — the parser's contract is only the 5-bit bound.)
    for byte in 0xA0..=0xBFu8 {
        let mut bytes = hinted_header();
        bytes[20] = byte;
        fix_checksum(&mut bytes);
        let h = Ipv4Header::decode(&bytes).expect("SAIs pattern always parses");
        let hint = h.affinity_hint().expect("pattern bytes carry a hint");
        assert!(hint < 32, "byte {byte:#04x} decoded to core {hint}");
        assert_eq!(hint, byte & 0x1F);
    }
}

#[test]
fn corrupted_length_fields_are_typed_errors() {
    for bad_len in [0u8, 1, 40, 255] {
        let mut bytes = hinted_header();
        bytes[20] = 0x44; // timestamp-ish TLV type
        bytes[21] = bad_len;
        fix_checksum(&mut bytes);
        assert_eq!(
            Ipv4Header::decode(&bytes),
            Err(ParseError::BadOption),
            "TLV length {bad_len}"
        );
    }
}

#[test]
fn garbage_padding_after_eol_is_ignored() {
    // RFC 791 says everything after EOL is padding; a middlebox that
    // leaves garbage there must not confuse the parser or conjure a tag.
    let mut bytes = hinted_header();
    assert_eq!(bytes[21], 0x00, "EOL after the option");
    bytes[22] = 0xFF;
    bytes[23] = 0xA9; // looks like a SAIs option, but sits after EOL
    fix_checksum(&mut bytes);
    let h = Ipv4Header::decode(&bytes).expect("padding is ignored");
    assert_eq!(h.affinity_hint(), Some(6), "the real option survives");
    assert_eq!(h.options.len(), 1, "padding bytes are not options");
}

#[test]
fn stripped_option_area_reports_no_tag() {
    // An option-stripping middlebox rewrites the option into NOPs and
    // reseals the checksum: the header stays valid, the tag is gone.
    let mut bytes = hinted_header();
    for b in &mut bytes[20..24] {
        *b = 0x01; // NOP flood
    }
    fix_checksum(&mut bytes);
    let h = Ipv4Header::decode(&bytes).expect("NOP-padded header parses");
    assert_eq!(h.affinity_hint(), None, "no tag after stripping");
}

#[test]
fn random_byte_soup_never_panics() {
    // A cheap deterministic fuzz loop: whatever the bytes, decode returns
    // Ok or a typed error — it must never panic or loop forever.
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..2_000 {
        let len = (next() % 64) as usize;
        let mut buf = vec![0u8; len];
        for b in &mut buf {
            *b = next() as u8;
        }
        let _ = Ipv4Header::decode(&buf);
        // Bias toward plausible headers so option parsing is reached:
        // valid version/IHL and a resealed checksum leave only the random
        // option bytes to reject or accept.
        if len >= 24 {
            buf[0] = 0x46; // version 4, IHL 6
            fix_checksum(&mut buf[..24]);
            let _ = Ipv4Header::decode(&buf);
        }
    }
}
