//! Exhaustive exploration of the SAIs steering/degradation protocol.
//!
//! ```text
//! cargo run --release -p sais-mck --bin mck_explore -- [--cores N] [--flows N]
//!     [--strips N] [--batches N] [--stripped N] [--dup-budget N]
//!     [--no-hint-loss] [--no-dup] [--no-reorder] [--no-delay] [--no-coalesce]
//!     [--legacy-completion] [--max-states N]
//! ```
//!
//! Prints the exploration statistics (visited canonical states,
//! transitions, terminal states, depth) and exits 0 iff the three
//! properties — no lost interrupt, no steering livelock, exactly-once
//! delivery — hold over the whole bounded state space. On a violation it
//! prints the minimal counterexample trace plus paste-ready regression
//! source, and exits 1. CI runs the default (2 cores × 2 flows × full
//! fault alphabet) configuration and archives the visited-state count.

use std::process::ExitCode;
use std::time::Instant;

use sais_core::protocol::ProtoConfig;
use sais_mck::{explore, ExploreSettings};

fn usage() -> ! {
    eprintln!(
        "usage: mck_explore [--cores N] [--flows N] [--strips N] [--batches N] \
         [--stripped N] [--dup-budget N] [--no-hint-loss] [--no-dup] [--no-reorder] \
         [--no-delay] [--no-coalesce] [--legacy-completion] [--max-states N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = ProtoConfig::ci();
    let mut settings = ExploreSettings::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{what} needs a numeric argument");
                usage()
            })
        };
        match arg.as_str() {
            "--cores" => cfg.cores = num("--cores") as u8,
            "--flows" => cfg.flows = num("--flows") as u8,
            "--strips" => cfg.strips_per_flow = num("--strips") as u8,
            "--batches" => cfg.batches_per_strip = num("--batches") as u8,
            "--stripped" => cfg.stripped_flows = num("--stripped") as u8,
            "--dup-budget" => cfg.dup_budget = num("--dup-budget") as u8,
            "--max-states" => settings.max_states = num("--max-states") as usize,
            "--no-hint-loss" => cfg.faults.hint_loss = false,
            "--no-dup" => cfg.faults.duplication = false,
            "--no-reorder" => cfg.faults.reorder = false,
            "--no-delay" => cfg.faults.delay = false,
            "--no-coalesce" => cfg.faults.coalesce = false,
            "--legacy-completion" => cfg.legacy_completion = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    println!(
        "config: {} cores x {} flows ({} stripped), {} strip(s)/flow x {} batch(es), \
         dup budget {}, faults[hint_loss={} dup={} reorder={} delay={} coalesce={}]{}",
        cfg.cores,
        cfg.flows,
        cfg.stripped_flows,
        cfg.strips_per_flow,
        cfg.batches_per_strip,
        cfg.dup_budget,
        cfg.faults.hint_loss,
        cfg.faults.duplication,
        cfg.faults.reorder,
        cfg.faults.delay,
        cfg.faults.coalesce,
        if cfg.legacy_completion {
            " LEGACY-COMPLETION"
        } else {
            ""
        },
    );

    let t0 = Instant::now();
    let r = explore(&cfg, &settings);
    let dt = t0.elapsed();
    println!(
        "visited-states: {}\ntransitions: {}\nterminal-states: {}\nmax-depth: {}\nelapsed: {:.2?}",
        r.visited, r.transitions, r.terminals, r.max_depth, dt
    );

    if r.truncated {
        eprintln!(
            "TRUNCATED at {} states — nothing proven; shrink the configuration",
            r.visited
        );
        return ExitCode::from(3);
    }
    match r.violation {
        None => {
            println!(
                "PROVED: no lost interrupt, no steering livelock, exactly-once delivery \
                 ({} terminal states checked)",
                r.terminals
            );
            ExitCode::SUCCESS
        }
        Some(cx) => {
            eprintln!("VIOLATION: {}", cx.violation);
            eprintln!("minimal trace ({} actions):", cx.trace.len());
            for (i, a) in cx.trace.iter().enumerate() {
                eprintln!("  {i:3}. {a}");
            }
            eprintln!("--- regression source ---\n{}", cx.to_regression(&cfg));
            ExitCode::FAILURE
        }
    }
}
