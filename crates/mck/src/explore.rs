//! Breadth-first exhaustive exploration of [`sais_core::protocol`].
//!
//! Plain explicit-state reachability: a FIFO frontier of concrete states,
//! a hashed set of *canonical encodings* for deduplication, and parent
//! pointers for minimal-counterexample reconstruction. No symbolic
//! machinery — the bounded configurations the CI proves are small enough
//! (tens of thousands of states) that brute force with a good canonical
//! form is both simpler and more trustworthy.
//!
//! ## Canonicalization
//!
//! Two reductions, both bisimulations of the protocol semantics:
//!
//! * **Streak capping.** A hint-less streak only matters up to
//!   `DEGRADE_AFTER` (routing and the degrade edge test `>=` / `==`
//!   against it), so any streak beyond `DEGRADE_AFTER + 1` behaves
//!   identically to `DEGRADE_AFTER + 1`: one more hint-less interrupt
//!   keeps it degraded without re-firing the churn event, one hint
//!   re-promotes it. Capping at exactly `DEGRADE_AFTER` would *not* be
//!   sound — it would conflate "just crossed" with "crossed a while ago"
//!   and re-fire the degrade edge — so the cap is `DEGRADE_AFTER + 1`.
//! * **Flow-class sorting.** Flows of the same middlebox class (stripped
//!   vs clean) are fully symmetric: the model never looks at a concrete
//!   flow id (the RSS spread target is resolved outside the protocol
//!   state). The encoding therefore sorts each class's per-flow blocks
//!   (flow state + its strips' states) lexicographically, collapsing
//!   permutation-equivalent states.
//!
//! Successors are generated from the *concrete* state, so traces replay
//! verbatim; canonicalization only decides what counts as "seen".

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use sais_core::protocol::{
    check_terminal, step, Action, ProtoConfig, ProtoState, StripSt, Violation,
};

/// Exploration bounds and reporting knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExploreSettings {
    /// Stop (with an error) after visiting this many states — a guard
    /// against configurations that explode, not a sampling knob: a run
    /// that hits it proves nothing.
    pub max_states: usize,
}

impl Default for ExploreSettings {
    fn default() -> Self {
        ExploreSettings {
            max_states: 20_000_000,
        }
    }
}

/// A property violation with the minimal action trace reaching it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The violated property.
    pub violation: Violation,
    /// Shortest action sequence from the initial state to the violation
    /// (BFS order guarantees minimality in actions).
    pub trace: Vec<Action>,
}

impl Counterexample {
    /// Render the trace as Rust source driving
    /// [`sais_core::protocol::step`] — paste-ready for a seeded
    /// regression in `tests/` (this is how `tests/mck_regressions.rs`
    /// traces were produced).
    pub fn to_regression(&self, cfg: &ProtoConfig) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "// mck counterexample: {}\nlet cfg = ProtoConfig {{ cores: {}, flows: {}, strips_per_flow: {}, batches_per_strip: {}, stripped_flows: {}, faults: FaultAlphabet::full(), dup_budget: {}, legacy_completion: {} }};\n",
            self.violation,
            cfg.cores,
            cfg.flows,
            cfg.strips_per_flow,
            cfg.batches_per_strip,
            cfg.stripped_flows,
            cfg.dup_budget,
            cfg.legacy_completion,
        ));
        out.push_str("let trace = [\n");
        for a in &self.trace {
            let lit = match *a {
                Action::Arrive { strip, merges } => {
                    format!("Action::Arrive {{ strip: {strip}, merges: {merges} }}")
                }
                Action::Deliver {
                    strip,
                    batch,
                    hinted,
                } => format!(
                    "Action::Deliver {{ strip: {strip}, batch: {batch}, hinted: {hinted} }}"
                ),
                Action::Dup { strip, hinted } => {
                    format!("Action::Dup {{ strip: {strip}, hinted: {hinted} }}")
                }
                Action::Copy { strip } => format!("Action::Copy {{ strip: {strip} }}"),
            };
            out.push_str(&format!("    {lit},\n"));
        }
        out.push_str("];\n");
        out
    }
}

/// What an exhaustive run found.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// Distinct canonical states visited (the number CI tracks).
    pub visited: usize,
    /// Transitions taken (edges of the explored graph).
    pub transitions: usize,
    /// Terminal states checked against the delivery properties.
    pub terminals: usize,
    /// Depth (actions) of the deepest state reached.
    pub max_depth: usize,
    /// The first (minimal-depth) violation, if any. `None` means the
    /// three properties hold over the whole bounded state space.
    pub violation: Option<Counterexample>,
    /// True if the search hit [`ExploreSettings::max_states`] and proved
    /// nothing.
    pub truncated: bool,
}

/// Every action enabled in `state` — the successor relation the BFS
/// expands. Mirrors the guards in [`sais_core::protocol::step`]: an
/// action listed here never returns `IllegalAction`, and `step` rejecting
/// one anyway would be a model bug (the explorer treats it as one).
pub fn enabled_actions(cfg: &ProtoConfig, state: &ProtoState) -> Vec<Action> {
    let mut acts = Vec::new();
    let merge_masks: &[u8] = &mask_range(cfg);
    for (i, s) in state.strips.iter().enumerate() {
        let strip = i as u8;
        let flow = cfg.flow_of(i);
        if !s.arrived {
            if cfg.faults.coalesce {
                acts.extend(
                    merge_masks
                        .iter()
                        .map(|&m| Action::Arrive { strip, merges: m }),
                );
            } else {
                acts.push(Action::Arrive { strip, merges: 0 });
            }
            continue;
        }
        let batch_choices = if cfg.faults.out_of_order() {
            s.pending.len()
        } else {
            usize::from(!s.pending.is_empty())
        };
        for batch in 0..batch_choices {
            for hinted in hint_choices(cfg, flow) {
                acts.push(Action::Deliver {
                    strip,
                    batch: batch as u8,
                    hinted,
                });
            }
        }
        if cfg.faults.duplication && state.dups_used < cfg.dup_budget && s.progress.done() > 0 {
            for hinted in hint_choices(cfg, flow) {
                acts.push(Action::Dup { strip, hinted });
            }
        }
        if s.copy_ready {
            acts.push(Action::Copy { strip });
        }
    }
    acts
}

/// Hint-visibility choices the adversary has for one interrupt of `flow`.
fn hint_choices(cfg: &ProtoConfig, flow: usize) -> impl Iterator<Item = bool> {
    let stripped = cfg.is_stripped(flow);
    let hinted = !stripped;
    let hintless = stripped || cfg.faults.hint_loss;
    [true, false]
        .into_iter()
        .filter(move |&h| if h { hinted } else { hintless })
}

/// All coalesce-decision masks for one strip arrival (bit `i` merges
/// batch `i` into its successor; the final batch has no bit).
fn mask_range(cfg: &ProtoConfig) -> Vec<u8> {
    let decisions = cfg.batches_per_strip.saturating_sub(1).min(7);
    (0u8..(1u8 << decisions)).collect()
}

/// Canonical byte encoding of a state (see the module docs for why each
/// reduction is sound).
fn canon(cfg: &ProtoConfig, state: &ProtoState) -> Vec<u8> {
    let cap = sais_apic::steer::DEGRADE_AFTER + 1;
    let spf = cfg.strips_per_flow as usize;
    // One block per flow: flow scalars then its strips, flow-major.
    let mut blocks: Vec<(bool, Vec<u8>)> = Vec::with_capacity(state.flows.len());
    for (f, fs) in state.flows.iter().enumerate() {
        let mut b = Vec::with_capacity(8 + spf * 12);
        b.extend_from_slice(&fs.streak.min(cap).to_le_bytes());
        b.extend_from_slice(&fs.degrades.to_le_bytes());
        b.extend_from_slice(&fs.repromotes.to_le_bytes());
        b.extend_from_slice(&fs.flips.to_le_bytes());
        b.push(fs.last_hinted);
        for s in &state.strips[f * spf..(f + 1) * spf] {
            encode_strip(&mut b, s);
        }
        blocks.push((cfg.is_stripped(f), b));
    }
    // Sort within each middlebox class only: a stripped flow is *not*
    // symmetric with a clean one.
    blocks.sort();
    let mut out = Vec::with_capacity(blocks.iter().map(|(_, b)| b.len() + 1).sum::<usize>() + 1);
    out.push(state.dups_used);
    for (stripped, b) in blocks {
        out.push(stripped as u8);
        out.extend_from_slice(&b);
    }
    out
}

fn encode_strip(b: &mut Vec<u8>, s: &StripSt) {
    b.push(s.arrived as u8);
    b.push(s.pending.len() as u8);
    b.extend_from_slice(&s.pending);
    b.extend_from_slice(&s.progress.total().to_le_bytes()[..2]);
    b.extend_from_slice(&s.progress.done().to_le_bytes()[..2]);
    b.extend_from_slice(&s.frames_done.to_le_bytes());
    b.push(s.copy_ready as u8);
    b.push(s.copies);
}

/// Exhaustively explore `cfg` from the initial state. Returns the first
/// minimal violation or, if none, the proof-by-exhaustion statistics.
pub fn explore(cfg: &ProtoConfig, settings: &ExploreSettings) -> ExploreResult {
    // Parallel arrays indexed by state id: the concrete state (successor
    // generation + trace replay) and the (parent id, action) edge that
    // first reached it.
    let mut states: Vec<ProtoState> = vec![ProtoState::initial(cfg)];
    let mut parents: Vec<Option<(usize, Action)>> = vec![None];
    let mut depths: Vec<u32> = vec![0];
    let mut visited: HashMap<Vec<u8>, ()> = HashMap::new();
    visited.insert(canon(cfg, &states[0]), ());
    let mut frontier: VecDeque<usize> = VecDeque::from([0]);

    let mut transitions = 0usize;
    let mut terminals = 0usize;
    let mut max_depth = 0usize;

    let trace_to = |id: usize, parents: &[Option<(usize, Action)>], extra: Option<Action>| {
        let mut trace = Vec::new();
        let mut cur = id;
        while let Some((p, a)) = parents[cur] {
            trace.push(a);
            cur = p;
        }
        trace.reverse();
        trace.extend(extra);
        trace
    };

    while let Some(id) = frontier.pop_front() {
        let acts = enabled_actions(cfg, &states[id]);
        if acts.is_empty() {
            terminals += 1;
            if let Err(violation) = check_terminal(cfg, &states[id]) {
                return ExploreResult {
                    visited: visited.len(),
                    transitions,
                    terminals,
                    max_depth,
                    violation: Some(Counterexample {
                        violation,
                        trace: trace_to(id, &parents, None),
                    }),
                    truncated: false,
                };
            }
            continue;
        }
        for a in acts {
            transitions += 1;
            let next = match step(cfg, &states[id], &a) {
                Ok(next) => next,
                Err(violation) => {
                    // Safety violation (or a model bug surfacing as
                    // IllegalAction — either way the trace is the story).
                    return ExploreResult {
                        visited: visited.len(),
                        transitions,
                        terminals,
                        max_depth,
                        violation: Some(Counterexample {
                            violation,
                            trace: trace_to(id, &parents, Some(a)),
                        }),
                        truncated: false,
                    };
                }
            };
            if let Entry::Vacant(e) = visited.entry(canon(cfg, &next)) {
                e.insert(());
                let depth = depths[id] as usize + 1;
                max_depth = max_depth.max(depth);
                states.push(next);
                parents.push(Some((id, a)));
                depths.push(depth as u32);
                frontier.push_back(states.len() - 1);
                if visited.len() >= settings.max_states {
                    return ExploreResult {
                        visited: visited.len(),
                        transitions,
                        terminals,
                        max_depth,
                        violation: None,
                        truncated: true,
                    };
                }
            }
        }
    }

    ExploreResult {
        visited: visited.len(),
        transitions,
        terminals,
        max_depth,
        violation: None,
        truncated: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sais_core::protocol::FaultAlphabet;

    fn tiny(legacy: bool) -> ProtoConfig {
        ProtoConfig {
            cores: 2,
            flows: 1,
            strips_per_flow: 1,
            batches_per_strip: 2,
            stripped_flows: 0,
            faults: FaultAlphabet::full(),
            dup_budget: 1,
            legacy_completion: legacy,
        }
    }

    #[test]
    fn guarded_tiny_config_is_clean() {
        let r = explore(&tiny(false), &ExploreSettings::default());
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(!r.truncated);
        assert!(r.visited > 10);
        assert!(r.terminals > 0);
    }

    #[test]
    fn legacy_completion_double_copies_under_duplication() {
        // The double-copy counterexample the exactly-once guard fixes:
        // with the pre-extraction `done < total` fall-through, a
        // duplicated interrupt completes the strip a second time.
        let r = explore(&tiny(true), &ExploreSettings::default());
        let cx = r.violation.expect("legacy semantics must violate");
        assert!(
            matches!(cx.violation, Violation::DoubleCopy { strip: 0 }),
            "{}",
            cx.violation
        );
        // BFS minimality: arrive, two delivers, the dup, two copies.
        assert!(cx.trace.len() <= 6, "not minimal: {:?}", cx.trace);
        // The rendered regression names the config and the trace.
        let src = cx.to_regression(&tiny(true));
        assert!(src.contains("legacy_completion: true"));
        assert!(src.contains("Action::Dup"));
    }

    #[test]
    fn enabled_actions_never_rejected_by_step() {
        let cfg = tiny(false);
        let mut stack = vec![ProtoState::initial(&cfg)];
        let mut seen = std::collections::HashSet::new();
        seen.insert(canon(&cfg, &stack[0]));
        let mut checked = 0;
        while let Some(st) = stack.pop() {
            for a in enabled_actions(&cfg, &st) {
                let next = step(&cfg, &st, &a).unwrap_or_else(|v| {
                    panic!("enabled action `{a}` rejected: {v}");
                });
                checked += 1;
                if seen.insert(canon(&cfg, &next)) {
                    stack.push(next);
                }
            }
        }
        // Matches the explorer's transition count for this config.
        assert!(checked > 50, "only {checked} transitions checked");
    }

    #[test]
    fn canon_collapses_symmetric_flows() {
        // Two clean flows, mirrored streaks: same canonical form.
        let cfg = ProtoConfig {
            cores: 2,
            flows: 2,
            strips_per_flow: 1,
            batches_per_strip: 2,
            stripped_flows: 0,
            faults: FaultAlphabet::full(),
            dup_budget: 0,
            legacy_completion: false,
        };
        let mut a = ProtoState::initial(&cfg);
        let mut b = ProtoState::initial(&cfg);
        a.flows[0].streak = 2;
        a.flows[0].last_hinted = 2;
        b.flows[1].streak = 2;
        b.flows[1].last_hinted = 2;
        assert_eq!(canon(&cfg, &a), canon(&cfg, &b));
        // But a stripped flow is not symmetric with a clean one.
        let cfg2 = ProtoConfig {
            stripped_flows: 1,
            ..cfg
        };
        assert_ne!(canon(&cfg2, &a), canon(&cfg2, &b));
    }

    #[test]
    fn streak_cap_is_a_bisimulation() {
        // States differing only in streak 4 vs 6 canonicalize together...
        let cfg = tiny(false);
        let mut a = ProtoState::initial(&cfg);
        let mut b = ProtoState::initial(&cfg);
        a.flows[0].streak = sais_apic::steer::DEGRADE_AFTER + 1;
        b.flows[0].streak = sais_apic::steer::DEGRADE_AFTER + 3;
        a.flows[0].last_hinted = 2;
        b.flows[0].last_hinted = 2;
        assert_eq!(canon(&cfg, &a), canon(&cfg, &b));
        // ...while 3 (just crossed) stays distinct from 4 (crossed long
        // ago): conflating them would re-fire the degrade edge.
        let mut c = ProtoState::initial(&cfg);
        c.flows[0].streak = sais_apic::steer::DEGRADE_AFTER;
        c.flows[0].last_hinted = 2;
        assert_ne!(canon(&cfg, &a), canon(&cfg, &c));
    }
}
