//! # sais-mck — explicit-state model checking of the SAIs steering protocol
//!
//! The simulator tests the steering/degradation protocol on *sampled*
//! seeds; this crate tests it on **every interleaving** of a bounded
//! configuration. The protocol itself lives in [`sais_core::protocol`] as
//! a pure transition function (`step(cfg, state, action)`), and the live
//! `Cluster` is built from the same primitives — so whatever the explorer
//! proves holds for the code that runs, not for a hand-written model of
//! it (the awkernel wake-protocol discipline, minus the Promela: the
//! model *is* the implementation).
//!
//! [`explore::explore`] runs a breadth-first search over canonicalized
//! states with a hashed visited set, driving the full fault alphabet
//! (hint loss, option stripping, duplication, reorder, delayed and
//! coalesced IRQ batches) as adversary moves. Three properties are
//! checked by exhaustion:
//!
//! 1. **No lost interrupt** — every terminal state has every strip's
//!    interrupt fan-in run to completion and its payload copied
//!    ([`sais_core::protocol::check_terminal`]); BFS exhaustion makes
//!    this a liveness proof for the bounded configuration.
//! 2. **No steering livelock** — per flow, degrade/re-promote churn is
//!    bounded by the adversary's hint-visibility alternations
//!    (`churn ≤ flips + 1`), and the events strictly alternate. The
//!    protocol never flaps on a steady environment; sustained flapping
//!    always traces back to adversary flips — exactly the semantics the
//!    `sais_obs::detect` livelock detector assumes
//!    ([`replay::windows_from_trace`] bridges a trace onto it).
//! 3. **Exactly-once strip delivery** — no strip is ever copied twice,
//!    even under duplicated interrupts.
//!
//! A violation comes out of the search as a *minimal* action trace (BFS
//! explores shortest-first); [`replay::replay`] re-executes a trace
//! through `protocol::step` and [`explore::Counterexample::to_regression`]
//! renders it as Rust source for a seeded regression under `tests/` —
//! that is how `tests/mck_regressions.rs` was generated.
//!
//! Run the explorer from the command line:
//!
//! ```text
//! cargo run --release -p sais-mck --bin mck_explore -- --cores 2 --flows 2
//! ```

pub mod explore;
pub mod replay;

pub use explore::{explore, Counterexample, ExploreResult, ExploreSettings};
pub use replay::{replay, windows_from_trace, ReplayOutcome};
