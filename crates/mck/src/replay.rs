//! Deterministic replay of counterexample traces.
//!
//! An explorer trace is just a `Vec<Action>`; [`replay`] re-executes it
//! through the live [`sais_core::protocol::step`] and reports how far it
//! got. Regression tests check in the minimal traces the explorer found
//! (see `tests/mck_regressions.rs`) and assert that the guarded protocol
//! survives them while the legacy semantics reproduce the violation —
//! pinning both the bug and the fix forever.
//!
//! [`windows_from_trace`] bridges a trace onto the streaming telemetry
//! detectors: it folds the per-delivery churn events into per-window
//! [`WindowStats`] exactly as the simulator's telemetry rotation would,
//! so `sais_obs::detect::evaluate` renders the same
//! `SteeringLivelock` verdict on a flapping model trace as it does on a
//! flapping simulated run — one livelock semantics across both planes.

use sais_core::protocol::{check_terminal, step, Action, ProtoConfig, ProtoState, Violation};
use sais_obs::detect::WindowStats;

/// Where a replayed trace ended up.
#[derive(Debug, Clone)]
pub enum ReplayOutcome {
    /// Every action applied cleanly; the final state is returned.
    Completed(Box<ProtoState>),
    /// Action `at` (0-based) tripped a violation.
    Violated {
        /// Index of the violating action in the trace.
        at: usize,
        /// The violation it tripped.
        violation: Violation,
    },
}

impl ReplayOutcome {
    /// The violation, if the trace tripped one.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            ReplayOutcome::Completed(_) => None,
            ReplayOutcome::Violated { violation, .. } => Some(violation),
        }
    }
}

/// Re-execute `trace` from the initial state of `cfg` through the live
/// transition function, stopping at the first violation.
pub fn replay(cfg: &ProtoConfig, trace: &[Action]) -> ReplayOutcome {
    let mut state = ProtoState::initial(cfg);
    for (at, a) in trace.iter().enumerate() {
        match step(cfg, &state, a) {
            Ok(next) => state = next,
            Err(violation) => return ReplayOutcome::Violated { at, violation },
        }
    }
    ReplayOutcome::Completed(Box::new(state))
}

/// Replay `trace` and additionally require it to end in a terminal-state
/// property check (the no-lost-interrupt obligation).
pub fn replay_to_terminal(cfg: &ProtoConfig, trace: &[Action]) -> Result<ProtoState, Violation> {
    match replay(cfg, trace) {
        ReplayOutcome::Completed(state) => {
            check_terminal(cfg, &state)?;
            Ok(*state)
        }
        ReplayOutcome::Violated { violation, .. } => Err(violation),
    }
}

/// Fold a trace's steering churn into telemetry windows of
/// `actions_per_window` actions each, the way the simulator's telemetry
/// rotation attributes churn to windows of simulated time. Only the
/// steering fields are populated; the rest stay zero.
pub fn windows_from_trace(
    cfg: &ProtoConfig,
    trace: &[Action],
    actions_per_window: usize,
) -> Vec<WindowStats> {
    assert!(actions_per_window > 0, "window must hold at least 1 action");
    let mut state = ProtoState::initial(cfg);
    let mut windows: Vec<WindowStats> = Vec::new();
    for (i, a) in trace.iter().enumerate() {
        let next = match step(cfg, &state, a) {
            Ok(next) => next,
            // Telemetry reflects what happened up to the violation.
            Err(_) => break,
        };
        let epoch = (i / actions_per_window) as u64;
        if windows.last().map(|w| w.epoch) != Some(epoch) {
            windows.push(WindowStats {
                epoch,
                ..WindowStats::default()
            });
        }
        let w = windows.last_mut().expect("window pushed above");
        for (f, nf) in state.flows.iter().zip(&next.flows) {
            w.degrades += u64::from(nf.degrades - f.degrades);
            w.repromotes += u64::from(nf.repromotes - f.repromotes);
        }
        w.degraded_flows = next.flows.iter().filter(|f| f.is_degraded()).count() as u64;
        state = next;
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use sais_core::protocol::FaultAlphabet;
    use sais_obs::detect::{evaluate, DetectorConfig, TelemetryVerdict};

    /// One clean flow, one strip, enough batches to flap the hint
    /// visibility several times.
    fn flappy_cfg() -> ProtoConfig {
        ProtoConfig {
            cores: 2,
            flows: 1,
            strips_per_flow: 1,
            batches_per_strip: 16,
            stripped_flows: 0,
            faults: FaultAlphabet {
                hint_loss: true,
                duplication: false,
                reorder: false,
                delay: false,
                coalesce: false,
            },
            dup_budget: 0,
            legacy_completion: false,
        }
    }

    /// An adversary that alternates 3 hint-less / 1 hinted: maximal
    /// legal flapping.
    fn flappy_trace() -> Vec<Action> {
        let mut t = vec![Action::Arrive {
            strip: 0,
            merges: 0,
        }];
        for i in 0..16 {
            t.push(Action::Deliver {
                strip: 0,
                batch: 0,
                hinted: i % 4 == 3,
            });
        }
        t.push(Action::Copy { strip: 0 });
        t
    }

    #[test]
    fn flappy_trace_is_legal_and_terminal() {
        // Maximal flapping is *bounded* flapping: every churn event is
        // paid for by an adversary hint flip, so the trace replays clean.
        let state = replay_to_terminal(&flappy_cfg(), &flappy_trace()).expect("legal trace");
        let f = &state.flows[0];
        assert_eq!(f.degrades, 4);
        assert_eq!(f.repromotes, 4);
        assert!(f.degrades + f.repromotes <= f.flips + 1);
    }

    #[test]
    fn detector_sees_model_flapping_as_livelock() {
        // The sais_obs livelock detector, fed windows folded from the
        // model trace, fires exactly as it would on a simulated run:
        // same churn semantics on both planes.
        let windows = windows_from_trace(&flappy_cfg(), &flappy_trace(), 4);
        let verdicts = evaluate(DetectorConfig::default(), &windows);
        assert!(
            verdicts
                .iter()
                .any(|v| matches!(v, TelemetryVerdict::SteeringLivelock { .. })),
            "expected SteeringLivelock, got {verdicts:?}"
        );
    }

    #[test]
    fn steady_trace_raises_no_livelock() {
        // One degrade with no re-promotion is degradation, not livelock.
        let cfg = ProtoConfig {
            stripped_flows: 1,
            ..flappy_cfg()
        };
        let mut t = vec![Action::Arrive {
            strip: 0,
            merges: 0,
        }];
        t.extend((0..16).map(|_| Action::Deliver {
            strip: 0,
            batch: 0,
            hinted: false,
        }));
        t.push(Action::Copy { strip: 0 });
        let windows = windows_from_trace(&cfg, &t, 4);
        assert!(evaluate(DetectorConfig::default(), &windows).is_empty());
        let state = replay_to_terminal(&cfg, &t).expect("legal trace");
        assert_eq!(state.flows[0].degrades, 1);
        assert_eq!(state.flows[0].repromotes, 0);
    }

    #[test]
    fn violated_replay_reports_the_offending_action() {
        let cfg = ProtoConfig {
            legacy_completion: true,
            dup_budget: 1,
            faults: FaultAlphabet::full(),
            batches_per_strip: 2,
            ..flappy_cfg()
        };
        let t = vec![
            Action::Arrive {
                strip: 0,
                merges: 0,
            },
            Action::Deliver {
                strip: 0,
                batch: 0,
                hinted: true,
            },
            Action::Deliver {
                strip: 0,
                batch: 0,
                hinted: true,
            },
            Action::Copy { strip: 0 },
            Action::Dup {
                strip: 0,
                hinted: true,
            },
            Action::Copy { strip: 0 },
        ];
        match replay(&cfg, &t) {
            ReplayOutcome::Violated { at, violation } => {
                assert_eq!(at, 5);
                assert!(matches!(violation, Violation::DoubleCopy { strip: 0 }));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }
}
