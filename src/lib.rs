//! # sais — Source-Aware Interrupt Scheduling for Parallel I/O
//!
//! A full-system Rust reproduction of *"A Source-aware Interrupt Scheduling
//! for Modern Parallel I/O Systems"* (Zou, Sun, Ma & Duan, IIT, 2012),
//! including every substrate the paper's prototype depends on: a
//! deterministic discrete-event engine, a per-core cache hierarchy with
//! migration costs, an x86 APIC model with pluggable steering policies, a
//! TCP/IP layer with the paper's IP-option hint channel, a PVFS-like
//! striped parallel file system, and IOR-like workloads.
//!
//! This facade crate re-exports the workspace members; see each crate's
//! documentation for details, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ```
//! use sais::prelude::*;
//!
//! let mut cfg = ScenarioConfig::testbed_3gig(8, 256 * 1024);
//! cfg.file_size = 8 * 1024 * 1024; // keep the doctest fast
//! let sais = cfg.clone().with_policy(PolicyChoice::SourceAware).run();
//! let irqb = cfg.with_policy(PolicyChoice::LowestLoaded).run();
//! assert!(sais.bandwidth_bytes_per_sec() > irqb.bandwidth_bytes_per_sec());
//! ```

pub use sais_apic as apic;
pub use sais_core as core;
pub use sais_cpu as cpu;
pub use sais_mem as mem;
pub use sais_metrics as metrics;
pub use sais_net as net;
pub use sais_obs as obs;
pub use sais_pvfs as pvfs;
pub use sais_sim as sim;
pub use sais_workload as workload;

/// The types most programs need.
pub mod prelude {
    pub use sais_apic::{Policy, PolicyKind};
    pub use sais_core::memsim::{MemSimConfig, MemSimMode};
    pub use sais_core::scenario::{FaultPlan, PolicyChoice, RunMetrics, ScenarioConfig};
    pub use sais_core::{HintCapsuler, HintMessager, IMComposer, SrcParser};
    pub use sais_sim::{SimDuration, SimTime};
    pub use sais_workload::{IorConfig, MemExpConfig, MemExpMode, MultiClientPoint};
}
