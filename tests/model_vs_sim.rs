//! The §III analytic model against the discrete-event simulator: the
//! model's qualitative orderings must hold in simulation.

use sais::core::analysis::AnalyticModel;
use sais::prelude::*;

fn run_pair(mut cfg: ScenarioConfig) -> (f64, f64) {
    cfg.file_size = 16 << 20;
    let sais = cfg
        .clone()
        .with_policy(PolicyChoice::SourceAware)
        .run()
        .bandwidth_bytes_per_sec();
    let irqb = cfg
        .with_policy(PolicyChoice::LowestLoaded)
        .run()
        .bandwidth_bytes_per_sec();
    (sais, irqb)
}

#[test]
fn m_much_greater_than_p_makes_source_aware_win_in_both() {
    // Model side (eqs. 5/6).
    let model = sais::core::analysis::calibrated(8, 16, 100, 1e-3);
    assert!(model.predicted_speedup() > 0.0);
    // Simulator side at the same calibration.
    let (sais, irqb) = run_pair(ScenarioConfig::testbed_3gig(16, 128 * 1024));
    assert!(sais > irqb);
}

#[test]
fn free_migration_flips_the_ordering_in_both() {
    // Model: M = 0 makes balanced scheduling better (parallel handling).
    let model = AnalyticModel {
        m: 0.0,
        ..sais::core::analysis::calibrated(8, 16, 100, 1e-3)
    };
    assert!(model.t_balance_multi() < model.t_source_aware_multi());
    // Simulator: with near-free cache-to-cache transfers, SAIs loses its
    // edge (and can dip slightly below due to serialized handling).
    let mut cfg = ScenarioConfig::testbed_3gig(16, 128 * 1024);
    cfg.mem.c2c_line = SimDuration::from_nanos(1);
    let (sais, irqb) = run_pair(cfg);
    let gain = sais / irqb - 1.0;
    assert!(
        gain < 0.02,
        "with M ≈ 0 the SAIs advantage must vanish, got {gain:+.4}"
    );
}

#[test]
fn advantage_grows_with_migration_cost_in_both() {
    // Model: gap is linear in (M − P).
    let base = sais::core::analysis::calibrated(8, 16, 100, 1e-3);
    let expensive = AnalyticModel {
        m: base.m * 4.0,
        ..base
    };
    assert!(expensive.predicted_speedup() > base.predicted_speedup());
    // Simulator: sweep c2c latency.
    let gain_at = |ns: u64| {
        let mut cfg = ScenarioConfig::testbed_3gig(16, 128 * 1024);
        cfg.mem.c2c_line = SimDuration::from_nanos(ns);
        let (s, b) = run_pair(cfg);
        s / b - 1.0
    };
    let low = gain_at(30);
    let high = gain_at(240);
    assert!(high > low, "gain at 240ns {high:.4} vs 30ns {low:.4}");
}

#[test]
fn residue_dilution_matches() {
    // Model: a larger T_R (network/server share) dilutes the speedup.
    let tight = sais::core::analysis::calibrated(8, 16, 100, 1e-4);
    let loose = sais::core::analysis::calibrated(8, 16, 100, 1e-1);
    assert!(tight.predicted_speedup() > loose.predicted_speedup());
    // Simulator: slower servers = larger T_R = smaller gain.
    let gain_with_storage = |bw: f64| {
        let mut cfg = ScenarioConfig::testbed_3gig(16, 128 * 1024);
        cfg.server.storage_bw = bw;
        let (s, b) = run_pair(cfg);
        s / b - 1.0
    };
    let fast_servers = gain_with_storage(400e6);
    let slow_servers = gain_with_storage(40e6);
    assert!(
        fast_servers > slow_servers,
        "fast {fast_servers:.4} vs slow {slow_servers:.4}"
    );
}

#[test]
fn eq7_bandwidth_coupling_shows_in_simulation() {
    // Eq. (7): with the client NIC as the ceiling, raising N_S cannot raise
    // delivered bandwidth once saturated. 1-Gig NIC, large transfers.
    let bw_at = |servers: usize| {
        let mut cfg = ScenarioConfig::testbed_1gig(servers, 2 * 1024 * 1024);
        cfg.file_size = 16 << 20;
        cfg.policy = PolicyChoice::SourceAware;
        cfg.run().bandwidth_bytes_per_sec()
    };
    let b8 = bw_at(8);
    let b48 = bw_at(48);
    assert!(b48 < b8 * 1.15, "NIC-bound: {b8:.0} → {b48:.0}");
    assert!(b48 < 125e6, "below the 1-GbE line rate");
}
