//! End-to-end trace-analysis tests: run real scenarios and check the
//! analyzer's acceptance properties — blame categories partition every
//! request's total exactly, SAIs deletes the migration-stall category
//! while balanced steering pays it (matching the stage histograms), the
//! same-seed same-policy diff is zero (determinism witness), and the
//! RoundRobin→SAIs diff attributes the win to the stall/consume path.

use sais_bench::analysis::{self, check_blame_sums, stall_share};
use sais_core::scenario::PolicyChoice;
use sais_obs::analyze::{blame_requests, diff_blames, BlameCategory, Trace};
use sais_obs::{perfetto, Stage};

fn report(policy: PolicyChoice) -> analysis::PolicyReport {
    analysis::analyze_policy(policy, 20)
}

#[test]
fn blame_categories_partition_every_request_exactly() {
    for policy in [PolicyChoice::RoundRobin, PolicyChoice::SourceAware] {
        let r = report(policy);
        assert!(
            !r.blames.is_empty(),
            "{}: no requests blamed",
            policy.label()
        );
        check_blame_sums(&r.blames).unwrap_or_else(|e| panic!("{}: {e}", policy.label()));
        // The aggregate inherits exactness from the per-request partition.
        assert_eq!(
            r.table.ns.iter().sum::<u64>(),
            r.table.total_ns,
            "{}: aggregate drifted",
            policy.label()
        );
    }
}

#[test]
fn sais_deletes_migration_stall_and_roundrobin_pays_it() {
    let rr = report(PolicyChoice::RoundRobin);
    let sais = report(PolicyChoice::SourceAware);
    assert_eq!(
        sais.table.get(BlameCategory::MigrationStall),
        0,
        "SAIs must pay zero migration stall"
    );
    assert_eq!(stall_share(&sais), 0.0);
    assert!(
        rr.table.get(BlameCategory::MigrationStall) > 0,
        "RoundRobin scatters interrupts, so strips must pay stalls"
    );
    // Handler work exists under both policies.
    for r in [&rr, &sais] {
        assert!(
            r.table.get(BlameCategory::Handler) > 0,
            "{}",
            r.policy.label()
        );
        assert!(
            r.table.get(BlameCategory::Consume) > 0,
            "{}",
            r.policy.label()
        );
    }
}

/// The blame aggregates must tell the same story as the stage histograms
/// `tab_stages` prints: a policy records migration-stall *time* in the
/// `Stage::MigrationStall` histogram iff the blame walk charges it
/// migration-stall *blame*.
#[test]
fn blame_agrees_with_stage_histograms() {
    for policy in [PolicyChoice::RoundRobin, PolicyChoice::SourceAware] {
        let (_m, cluster) = analysis::demo_config(policy).run_full();
        // The histogram records one sample per strip, including zeros; a
        // nonzero max means some strip stalled.
        let stage_stall_ns: u64 = cluster
            .stages()
            .get(Stage::MigrationStall)
            .map(|h| h.max())
            .unwrap_or(0);
        let trace = Trace::from_recorder(cluster.recorder());
        let blames = blame_requests(&trace);
        let table = sais_obs::analyze::BlameTable::aggregate(&blames);
        let blamed = table.get(BlameCategory::MigrationStall);
        assert_eq!(
            stage_stall_ns > 0,
            blamed > 0,
            "{}: stages say stall max {} ns, blame says {} ns",
            policy.label(),
            stage_stall_ns,
            blamed
        );
    }
}

#[test]
fn same_policy_same_seed_diff_is_zero() {
    let a = report(PolicyChoice::SourceAware);
    let b = report(PolicyChoice::SourceAware);
    let d = diff_blames(&a.blames, &b.blames, analysis::DIFF_THRESHOLD);
    assert!(!d.aligned.is_empty());
    assert!(d.is_zero(), "deterministic engine must diff to zero");
}

#[test]
fn roundrobin_to_sais_diff_blames_the_stall_path() {
    let a = analysis::analyze_demo(
        PolicyChoice::RoundRobin,
        PolicyChoice::SourceAware,
        analysis::TIMELINE_BINS,
    );
    assert_eq!(a.diff.unmatched_a, 0, "same scenario+seed aligns fully");
    assert_eq!(a.diff.unmatched_b, 0);
    assert!(
        a.diff.delta_total_ns < 0,
        "SAIs must be faster: delta {} ns",
        a.diff.delta_total_ns
    );
    // The stall category is deleted outright.
    assert!(a.diff.delta_ns[BlameCategory::MigrationStall.index()] < 0);
    // The improvement is dominated by the handler→consume path: the
    // stall itself or the consume/queueing time around it.
    let dominant = a.diff.dominant();
    assert!(
        matches!(
            dominant,
            BlameCategory::MigrationStall | BlameCategory::Consume | BlameCategory::IrqQueue
        ),
        "dominant shift was {}",
        dominant.name()
    );
}

#[test]
fn real_run_passes_span_integrity() {
    for policy in [PolicyChoice::RoundRobin, PolicyChoice::SourceAware] {
        let (_m, cluster) = analysis::demo_config(policy).run_full();
        cluster
            .recorder()
            .check_integrity()
            .unwrap_or_else(|e| panic!("{}: {e}", policy.label()));
    }
}

/// The artifact path equals the in-process path: blaming a trace loaded
/// from the exported Chrome JSON gives byte-identical results.
#[test]
fn exported_trace_blames_identically_to_live_recorder() {
    let (_m, cluster) = analysis::demo_config(PolicyChoice::RoundRobin).run_full();
    let live = Trace::from_recorder(cluster.recorder());
    let json = perfetto::to_chrome_json(cluster.recorder());
    let loaded = Trace::from_chrome_json(&json).expect("export loads");
    assert_eq!(blame_requests(&live), blame_requests(&loaded));
}

#[test]
fn timeline_covers_all_cores_and_forensics_names_outliers() {
    let r = report(PolicyChoice::RoundRobin);
    assert!(!r.timeline.rows.is_empty());
    let csv = r.timeline.to_csv();
    assert!(csv.starts_with("pid,core,bin,"));
    let heat = r.timeline.render();
    assert!(heat.contains("handler occupancy") && heat.contains("consume occupancy"));
    let forensics = sais_obs::analyze::tail_report(&r.blames, 0.99, 4);
    assert!(
        forensics.contains("requests at or above p99"),
        "{forensics}"
    );
    assert!(forensics.contains("ns total"), "{forensics}");
}
