//! Seeded counterexample corpus from the `sais-mck` explorer.
//!
//! Each regression here is a trace the explicit-state explorer produced
//! (minimal, by BFS construction), checked in literally so the protocol
//! can never regress into it, plus the full-DES scenario that exercises
//! the same failure shape end to end. The three properties under guard:
//!
//! 1. exactly-once strip delivery,
//! 2. no lost interrupt,
//! 3. no steering livelock (churn bounded by the environment's hint
//!    alternations).
//!
//! The one genuine violation the explorer found is the **legacy
//! completion double-copy**: with the pre-extraction `done < total`
//! fall-through, a duplicated interrupt re-completes an already-copied
//! strip. `protocol::BatchProgress`'s exactly-once edge fixes it; both
//! the bug and the fix are pinned below.

use sais::core::protocol::{Action, FaultAlphabet, ProtoConfig, Violation};
use sais::prelude::*;
use sais_mck::replay::replay_to_terminal;
use sais_mck::{explore, replay, ExploreSettings, ReplayOutcome};

/// The minimal counterexample `mck_explore --legacy-completion` emits,
/// verbatim (5 actions): coalesce the whole strip into one batch, deliver
/// it, copy, duplicate the interrupt, copy again.
fn legacy_double_copy_trace() -> (ProtoConfig, Vec<Action>) {
    let cfg = ProtoConfig {
        cores: 2,
        flows: 2,
        strips_per_flow: 1,
        batches_per_strip: 3,
        stripped_flows: 1,
        faults: FaultAlphabet::full(),
        dup_budget: 1,
        legacy_completion: true,
    };
    let trace = vec![
        Action::Arrive {
            strip: 0,
            merges: 3,
        },
        Action::Deliver {
            strip: 0,
            batch: 0,
            hinted: false,
        },
        Action::Copy { strip: 0 },
        Action::Dup {
            strip: 0,
            hinted: false,
        },
        Action::Copy { strip: 0 },
    ];
    (cfg, trace)
}

#[test]
fn legacy_completion_trace_double_copies() {
    // The checked-in trace still reproduces the violation against the
    // legacy semantics — the counterexample stays alive.
    let (cfg, trace) = legacy_double_copy_trace();
    match replay(&cfg, &trace) {
        ReplayOutcome::Violated { at, violation } => {
            assert_eq!(at, 4, "the second copy is the violating action");
            assert!(matches!(violation, Violation::DoubleCopy { strip: 0 }));
        }
        other => panic!("legacy semantics must double-copy, got {other:?}"),
    }
}

#[test]
fn guarded_completion_survives_the_same_trace() {
    // The exactly-once guard rejects the second copy as not-enabled: the
    // duplicated interrupt is classified spurious and never re-arms the
    // copy path. The trace minus the final copy is a legal prefix.
    let (mut cfg, trace) = legacy_double_copy_trace();
    cfg.legacy_completion = false;
    match replay(&cfg, &trace) {
        ReplayOutcome::Violated { at, violation } => {
            assert_eq!(at, 4);
            assert!(
                matches!(violation, Violation::IllegalAction { .. }),
                "guarded: second copy is not even enabled, got {violation}"
            );
        }
        other => panic!("expected the copy to be rejected, got {other:?}"),
    }
    let prefix = &trace[..trace.len() - 1];
    let out = replay(&cfg, prefix);
    assert!(out.violation().is_none(), "prefix is legal: {out:?}");
}

#[test]
fn ci_configuration_exhausts_clean() {
    // The CI proof obligation, as a regression: the 2-core × 2-flow ×
    // full-fault-alphabet configuration must exhaust with all three
    // properties intact. The visited-state count is pinned so silent
    // state-space drift (a protocol change that grows or shrinks the
    // reachable set without failing any property) still trips a test and
    // gets a deliberate update.
    let r = explore(&ProtoConfig::ci(), &ExploreSettings::default());
    assert!(r.violation.is_none(), "violation: {:?}", r.violation);
    assert!(!r.truncated);
    assert_eq!(
        r.visited, 2348,
        "state space drifted — rerun `mck_explore`, review, update this pin"
    );
    assert_eq!(r.terminals, 108);
}

#[test]
fn dup_exhausted_configs_still_deliver_every_strip() {
    // Liveness sweep across dup budgets and stripped-flow counts: no
    // configuration wedges a strip (lost interrupt) or flaps unboundedly.
    for dup_budget in [0u8, 1, 2] {
        for stripped_flows in [0u8, 1, 2] {
            let cfg = ProtoConfig {
                dup_budget,
                stripped_flows,
                ..ProtoConfig::ci()
            };
            let r = explore(&cfg, &ExploreSettings::default());
            assert!(
                r.violation.is_none(),
                "dup={dup_budget} stripped={stripped_flows}: {:?}",
                r.violation
            );
            assert!(r.terminals > 0, "search must reach terminal states");
        }
    }
}

#[test]
fn hand_minimized_near_miss_saturated_streak_repromotes_once() {
    // A near-miss the explorer proved safe, kept as a regression: a flow
    // hammered hint-less far past the threshold (streak saturation), then
    // re-promoted — exactly one degrade and one re-promote, no wedged
    // copy. An off-by-one at the threshold (degrade firing on `>` vs
    // `==`) breaks this trace's churn accounting.
    let cfg = ProtoConfig {
        cores: 2,
        flows: 1,
        strips_per_flow: 1,
        batches_per_strip: 6,
        stripped_flows: 0,
        faults: FaultAlphabet {
            hint_loss: true,
            duplication: false,
            reorder: false,
            delay: false,
            coalesce: false,
        },
        dup_budget: 0,
        legacy_completion: false,
    };
    let mut trace = vec![Action::Arrive {
        strip: 0,
        merges: 0,
    }];
    trace.extend((0..5).map(|_| Action::Deliver {
        strip: 0,
        batch: 0,
        hinted: false,
    }));
    trace.push(Action::Deliver {
        strip: 0,
        batch: 0,
        hinted: true,
    });
    trace.push(Action::Copy { strip: 0 });
    let state = replay_to_terminal(&cfg, &trace).expect("legal trace");
    assert_eq!(state.flows[0].degrades, 1, "one episode despite 5 hintless");
    assert_eq!(state.flows[0].repromotes, 1);
    assert!(!state.flows[0].is_degraded());
    assert_eq!(state.strips[0].copies, 1);
}

/// The DES face of the corpus: fault plans shaped like the counterexample
/// alphabet (coalescing + delay + stripping + corruption at full tilt)
/// through the full simulator, asserted against the same three
/// properties the explorer proves on the bounded model.
#[test]
fn des_survives_counterexample_shaped_fault_plans() {
    // (fault seed, corruption, option_strip, irq_coalesce, irq_delay)
    let corpus = [
        (0xDC_0111, 0.0, 1.0, 0.9, 0.9), // the double-copy shape: heavy
        // merge+delay on fully stripped flows
        (0xDC_0222, 0.3, 0.5, 0.5, 0.5), // mixed alphabet
        (0xDC_0333, 0.5, 0.0, 0.0, 0.9), // reorder-dominant
        (0xDC_0444, 0.0, 0.0, 1.0, 0.0), // coalesce-only
    ];
    for (i, (seed, corruption, option_strip, irq_coalesce, irq_delay)) in
        corpus.into_iter().enumerate()
    {
        let mut cfg = ScenarioConfig::testbed_3gig(8, 512 * 1024);
        cfg.file_size = 8 << 20;
        cfg.policy = PolicyChoice::SourceAware;
        cfg.faults.seed = seed;
        cfg.faults.corruption = corruption;
        cfg.faults.option_strip = option_strip;
        cfg.faults.irq_coalesce = irq_coalesce;
        cfg.faults.irq_delay = irq_delay;
        let m = cfg.run();
        // Exactly-once + no lost interrupt, end to end: every byte and
        // every strip delivered, none twice.
        assert_eq!(m.bytes_delivered, 8 << 20, "plan {i}");
        assert_eq!(m.strips_delivered, 128, "plan {i}");
        assert_eq!(m.requests_completed, 16, "plan {i}");
        // No steering livelock: churn accounting balanced, and an
        // environment that never flips hints back on cannot re-promote.
        assert_eq!(
            m.steering_degrades - m.steering_repromotes,
            m.degraded_flows,
            "plan {i}"
        );
        if corruption == 0.0 {
            assert_eq!(
                m.steering_repromotes, 0,
                "plan {i}: nothing restores hints mid-run"
            );
        }
    }
}
