//! Re-promotion paths, end to end: a degraded flow whose hint channel
//! comes back is re-armed by the first valid hint, and every degradation
//! metric returns to zero — the half of the steering state machine the
//! fault tests never exercised (they only assert *degradation*).
//!
//! The vehicle is `FaultPlan::option_strip_until`: the option-stripping
//! middlebox is decommissioned mid-run, so flows degrade during the
//! stripped prefix and must re-promote during the clean suffix. The model
//! checker proves these transitions safe on bounded configurations
//! (`sais-mck`); these tests pin them on the full DES.

use sais::core::scenario::ObsConfig;
use sais::prelude::*;

fn base() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::testbed_3gig(8, 512 * 1024);
    cfg.file_size = 8 << 20;
    cfg.policy = PolicyChoice::SourceAware;
    cfg
}

/// Wall-clock length of the fully-stripped run, used to place the
/// decommission point deterministically mid-run.
fn stripped_wall() -> SimDuration {
    let mut cfg = base();
    cfg.faults.option_strip = 1.0;
    let m = cfg.run();
    m.wall_time.since(SimTime::ZERO)
}

#[test]
fn degraded_flows_repromote_when_the_middlebox_goes_away() {
    let until = stripped_wall() / 2;
    let mut cfg = base();
    cfg.faults.option_strip = 1.0;
    cfg.faults.option_strip_until = Some(until);
    let m = cfg.run();
    // The stripped prefix degraded the flows...
    assert!(m.stripped_options > 0, "prefix must strip options");
    assert!(m.steering_degrades > 0, "stripped flows must degrade");
    // ...the clean suffix carried hints again...
    assert!(
        m.hinted_interrupts > 0,
        "suffix hints must reach the policy"
    );
    // ...and every degraded flow was re-armed by them: churn balances
    // and the degraded census is empty at run end.
    assert_eq!(
        m.steering_repromotes, m.steering_degrades,
        "every degradation episode must end in a re-promotion"
    );
    assert_eq!(m.degraded_flows, 0, "no flow stays degraded");
    // Delivery was never at risk either way.
    let clean = base().run();
    assert_eq!(m.bytes_delivered, clean.bytes_delivered);
}

#[test]
fn repromotion_restores_source_aware_steering_quality() {
    let until = stripped_wall() / 2;
    let mut half = base();
    half.faults.option_strip = 1.0;
    half.faults.option_strip_until = Some(until);
    let mut forever = base();
    forever.faults.option_strip = 1.0;
    let half = half.run();
    let forever = forever.run();
    // The permanently-stripped run pays RSS migrations for the whole
    // run; the re-promoted run only for the stripped prefix.
    assert!(
        half.strip_migrations < forever.strip_migrations,
        "re-promotion must cut migrations: {} vs {}",
        half.strip_migrations,
        forever.strip_migrations
    );
    assert!(half.hinted_interrupts > 0);
    assert_eq!(forever.hinted_interrupts, 0);
    // And the full-strip run never re-promotes: its flows stay degraded.
    assert_eq!(forever.steering_repromotes, 0);
    assert_eq!(
        forever.steering_degrades, forever.degraded_flows,
        "permanent stripping: one open episode per degraded flow"
    );
}

#[test]
fn churn_telemetry_windows_see_both_edges() {
    let until = stripped_wall() / 2;
    let mut cfg = base();
    cfg.faults.option_strip = 1.0;
    cfg.faults.option_strip_until = Some(until);
    cfg.obs = ObsConfig::timeseries();
    let m = cfg.run();
    // The telemetry plane attributes the degrade edge and the re-promote
    // edge to their windows: both appear somewhere in the series, and
    // the window sums reconcile with the run totals.
    let windows = m.telemetry.stats();
    let degrades: u64 = windows.iter().map(|w| w.degrades).sum();
    let repromotes: u64 = windows.iter().map(|w| w.repromotes).sum();
    assert_eq!(degrades, m.steering_degrades, "windowed degrades reconcile");
    assert_eq!(
        repromotes, m.steering_repromotes,
        "windowed repromotes reconcile"
    );
    assert!(degrades > 0 && repromotes > 0);
    // The last window's census agrees with the run-end metric: zero.
    let last = windows.last().expect("timeseries enabled");
    assert_eq!(last.degraded_flows, 0);
}

#[test]
fn decommission_at_time_zero_equals_no_stripping() {
    // Degenerate gate: a middlebox decommissioned before the run starts
    // never strips anything — byte-identical to a clean plan.
    let mut gated = base();
    gated.faults.option_strip = 1.0;
    gated.faults.option_strip_until = Some(SimDuration::from_nanos(0));
    let clean = base().run();
    let gated = gated.run();
    assert_eq!(gated.stripped_options, 0);
    assert_eq!(gated.steering_degrades, 0);
    assert_eq!(gated.bytes_delivered, clean.bytes_delivered);
    assert_eq!(gated.wall_time, clean.wall_time);
    assert_eq!(gated.strip_migrations, clean.strip_migrations);
}
