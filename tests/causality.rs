//! Trace-based causality: for every strip, the interrupt precedes the
//! copy, and under SAIs both land on the consuming core.

use sais::prelude::*;
use std::collections::HashMap;

fn traced(policy: PolicyChoice) -> (RunMetrics, sais::core::cluster::Cluster) {
    let mut cfg = ScenarioConfig::testbed_3gig(8, 256 * 1024);
    cfg.file_size = 4 << 20;
    cfg.policy = policy;
    cfg.trace_capacity = 1 << 16;
    cfg.run_full()
}

#[test]
fn interrupts_precede_copies_per_strip() {
    let (_, cluster) = traced(PolicyChoice::LowestLoaded);
    let trace = &cluster.clients[0].trace;
    let mut first_irq: HashMap<u64, sais::sim::SimTime> = HashMap::new();
    for ev in trace.with_tag("irq") {
        first_irq.entry(ev.a).or_insert(ev.time);
    }
    let mut copies = 0;
    for ev in trace.with_tag("copy") {
        let irq_t = first_irq
            .get(&ev.a)
            .unwrap_or_else(|| panic!("copy of strip {} without an interrupt", ev.a));
        assert!(*irq_t <= ev.time, "strip {}: copy before interrupt", ev.a);
        copies += 1;
    }
    assert_eq!(copies, 64, "4 MB / 64 KB strips all copied");
}

#[test]
fn sais_handles_and_copies_on_the_same_core() {
    let (m, cluster) = traced(PolicyChoice::SourceAware);
    assert_eq!(m.strip_migrations, 0);
    let trace = &cluster.clients[0].trace;
    let mut irq_core: HashMap<u64, u64> = HashMap::new();
    for ev in trace.with_tag("irq") {
        if let Some(prev) = irq_core.insert(ev.a, ev.b) {
            assert_eq!(prev, ev.b, "strip {}: peer interrupts split cores", ev.a);
        }
    }
    for ev in trace.with_tag("copy") {
        assert_eq!(
            irq_core[&ev.a], ev.b,
            "strip {}: handled on {} but consumed on {}",
            ev.a, irq_core[&ev.a], ev.b
        );
    }
}

#[test]
fn irqbalance_splits_handler_and_consumer() {
    let (m, cluster) = traced(PolicyChoice::LowestLoaded);
    assert!(m.strip_migrations > 0);
    let trace = &cluster.clients[0].trace;
    let mut irq_core: HashMap<u64, u64> = HashMap::new();
    for ev in trace.with_tag("irq") {
        irq_core.insert(ev.a, ev.b);
    }
    let mismatched = trace
        .with_tag("copy")
        .filter(|ev| irq_core.get(&ev.a) != Some(&ev.b))
        .count();
    assert!(
        mismatched > 32,
        "most strips should be handled away from the consumer: {mismatched}"
    );
}

#[test]
fn tracing_does_not_change_results() {
    let mut with = ScenarioConfig::testbed_3gig(8, 256 * 1024);
    with.file_size = 4 << 20;
    with.policy = PolicyChoice::SourceAware;
    let mut without = with.clone();
    with.trace_capacity = 4096;
    without.trace_capacity = 0;
    let a = with.run();
    let b = without.run();
    assert_eq!(a.wall_time, b.wall_time);
    assert_eq!(a.unhalted_cycles, b.unhalted_cycles);
}
