//! Guard against engine-throughput regressions.
//!
//! Re-measures the canonical scenarios and fails if any falls more than
//! 20% below the committed baseline in `BENCH_engine.json` (refresh it
//! with `cargo run --release -p sais-bench --bin perf_baseline` after an
//! intentional change). Timing a debug build says nothing about the
//! optimized engine, so the test only enforces the floor under
//! `--release`; set `SAIS_PERF_SKIP=1` to silence it on loaded machines.

use sais_bench::perf;

/// Allowed shortfall before the test fails. Generous enough to absorb
/// scheduler noise on a shared machine, tight enough to catch a real
/// hot-path regression (the optimizations this floor protects are each
/// worth well over 20%).
const TOLERANCE: f64 = 0.20;

#[test]
fn engine_throughput_stays_near_baseline() {
    if cfg!(debug_assertions) {
        eprintln!("perf_regression: skipped (debug build)");
        return;
    }
    if std::env::var_os("SAIS_PERF_SKIP").is_some() {
        eprintln!("perf_regression: skipped (SAIS_PERF_SKIP set)");
        return;
    }
    let Some(baseline) = perf::read_baseline() else {
        eprintln!(
            "perf_regression: skipped (no baseline at {})",
            perf::baseline_path().display()
        );
        return;
    };
    let results = perf::measure_all(3);
    let mut failures = Vec::new();
    for r in &results {
        let Some((_, base_events, base_eps)) = baseline.iter().find(|(n, _, _)| n == r.name) else {
            continue;
        };
        assert_eq!(
            r.events, *base_events,
            "{}: event count changed — the baseline is stale, not slow; \
             rerun perf_baseline after verifying results are unchanged",
            r.name
        );
        let floor = base_eps * (1.0 - TOLERANCE);
        if r.events_per_sec < floor {
            failures.push(format!(
                "{}: {:.0} events/s is below the floor {:.0} (baseline {:.0})",
                r.name, r.events_per_sec, floor, base_eps
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "engine throughput regressed:\n  {}",
        failures.join("\n  ")
    );
}
