//! Physical-regime sanity: nothing in the stack may exceed the hardware
//! ceilings it models, and the regime structure the paper's argument needs
//! (NIC-bound at 1-Gig, cache-bound in memory) must hold.

use sais::prelude::*;

#[test]
fn one_gig_never_exceeds_line_rate() {
    for transfer in [128u64 << 10, 2 << 20] {
        let mut cfg = ScenarioConfig::testbed_1gig(16, transfer);
        cfg.file_size = 16 << 20;
        cfg.policy = PolicyChoice::SourceAware;
        let m = cfg.run();
        assert!(
            m.bandwidth_bytes_per_sec() < 125e6,
            "{} MB/s exceeds 1-GbE",
            m.bandwidth_mbs()
        );
    }
}

#[test]
fn three_gig_never_exceeds_bond_rate() {
    let mut cfg = ScenarioConfig::testbed_3gig(48, 2 << 20);
    cfg.file_size = 32 << 20;
    cfg.policy = PolicyChoice::SourceAware;
    let m = cfg.run();
    assert!(m.bandwidth_bytes_per_sec() < 375e6);
}

#[test]
fn memsim_never_exceeds_dram_bandwidth() {
    for apps in [1usize, 4, 8] {
        let mut c = MemSimConfig::testbed(MemSimMode::SiSais, apps);
        c.bytes_per_app = 8 << 20;
        let m = c.run();
        assert!(
            m.bandwidth < 5333e6,
            "apps={apps}: {} MB/s",
            m.bandwidth / 1e6
        );
        assert!(m.cpu_utilization <= 1.0 + 1e-9);
    }
}

#[test]
fn memory_regime_dwarfs_nic_regime() {
    // The paper's §VI premise: removing the NIC exposes an order of
    // magnitude more bandwidth.
    let mut net = ScenarioConfig::testbed_3gig(16, 1 << 20);
    net.file_size = 16 << 20;
    net.policy = PolicyChoice::SourceAware;
    let net_bw = net.run().bandwidth_bytes_per_sec();

    let mut mem = MemSimConfig::testbed(MemSimMode::SiSais, 4);
    mem.bytes_per_app = 16 << 20;
    let mem_bw = mem.run().bandwidth;
    assert!(
        mem_bw > 5.0 * net_bw,
        "memory {:.0} MB/s vs network {:.0} MB/s",
        mem_bw / 1e6,
        net_bw / 1e6
    );
}

#[test]
fn utilization_is_low_when_nic_bound() {
    // Fig. 8's point: a 1-GbE NIC starves eight 2.7 GHz cores.
    let mut cfg = ScenarioConfig::testbed_1gig(16, 1 << 20);
    cfg.file_size = 16 << 20;
    cfg.policy = PolicyChoice::LowestLoaded;
    let m = cfg.run();
    assert!(
        m.cpu_utilization < 0.20,
        "1-Gig runs must be mostly idle: {:.2}%",
        m.cpu_utilization * 100.0
    );
}

#[test]
fn miss_rate_rises_with_transfer_size() {
    // Larger transfers stream more data through the fixed 512 KB L2.
    let miss_at = |transfer: u64| {
        let mut cfg = ScenarioConfig::testbed_3gig(16, transfer);
        cfg.file_size = 16 << 20;
        cfg.policy = PolicyChoice::SourceAware;
        cfg.run().l2_miss_rate
    };
    let small = miss_at(128 << 10);
    let large = miss_at(2 << 20);
    assert!(large > small, "2M miss {large:.4} vs 128K {small:.4}");
}

#[test]
fn wall_time_scales_linearly_with_file_size() {
    // Steady-state throughput ⇒ doubling the file ≈ doubles the time.
    let wall_at = |bytes: u64| {
        let mut cfg = ScenarioConfig::testbed_3gig(16, 512 << 10);
        cfg.file_size = bytes;
        cfg.policy = PolicyChoice::SourceAware;
        cfg.run().wall_time.as_secs_f64()
    };
    let w1 = wall_at(8 << 20);
    let w2 = wall_at(16 << 20);
    let ratio = w2 / w1;
    assert!(
        (1.8..2.2).contains(&ratio),
        "expected ~2x wall time, got {ratio:.3}"
    );
}
