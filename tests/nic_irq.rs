//! NIC/APIC plumbing contracts observed from whole-cluster runs.

use sais::prelude::*;

fn base() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::testbed_3gig(16, 512 * 1024);
    cfg.file_size = 8 << 20;
    cfg.policy = PolicyChoice::SourceAware;
    cfg
}

#[test]
fn coalescing_scales_interrupt_count_inversely() {
    let irqs_at = |frames: u64| {
        let mut cfg = base();
        cfg.coalesce_frames = frames;
        cfg.run().interrupts
    };
    let per_frame = irqs_at(1);
    let coalesced8 = irqs_at(8);
    let coalesced32 = irqs_at(32);
    assert!(per_frame > coalesced8 * 6, "{per_frame} vs {coalesced8}");
    assert!(
        coalesced8 > coalesced32 * 2,
        "{coalesced8} vs {coalesced32}"
    );
    // One 64 KB strip ≈ 45 frames: per-frame mode raises ≈ 45 per strip.
    let strips = 128;
    assert!(per_frame >= 44 * strips && per_frame <= 46 * strips);
}

#[test]
fn lapic_counts_match_distribution() {
    let (m, cluster) = {
        let cfg = base();
        cfg.run_full()
    };
    let client = &cluster.clients[0];
    for (core, &expected) in m.irq_distribution.iter().enumerate() {
        assert_eq!(
            client.ioapic.lapic(core).accepted.get(),
            expected,
            "LAPIC {core} disagrees with the distribution"
        );
    }
}

#[test]
fn every_bond_port_carries_interrupt_lines() {
    // With 16 server flows Toeplitz-hashed over 3 ports, each port's IRQ
    // line fires (pins are per port); under SAIs they all still land on
    // the consumer core.
    let (m, _cluster) = base().run_full();
    assert_eq!(
        m.irq_distribution.iter().filter(|&&c| c > 0).count(),
        1,
        "SAIs: one consuming core"
    );
    assert_eq!(m.hinted_interrupts, m.interrupts);
}

#[test]
fn single_port_and_bonded_conserve_identically() {
    for ports in [1usize, 2, 3] {
        let mut cfg = base();
        cfg.nic_ports = ports;
        let m = cfg.run();
        assert_eq!(m.bytes_delivered, 8 << 20, "ports={ports}");
        // More ports strictly helps (or at worst ties) delivered bandwidth.
        if ports > 1 {
            let mut one = base();
            one.nic_ports = 1;
            let m1 = one.run();
            assert!(
                m.bandwidth_bytes_per_sec() >= m1.bandwidth_bytes_per_sec() * 0.99,
                "bonding must not lose bandwidth"
            );
        }
    }
}
