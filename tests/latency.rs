//! Request-latency distribution contracts: SAIs improves not just the
//! mean but the tail, and latency accounting is self-consistent.

use sais::prelude::*;

fn run(policy: PolicyChoice) -> RunMetrics {
    let mut cfg = ScenarioConfig::testbed_3gig(16, 128 * 1024);
    cfg.file_size = 16 << 20;
    cfg.policy = policy;
    cfg.run()
}

#[test]
fn latency_counts_match_requests() {
    let m = run(PolicyChoice::SourceAware);
    assert_eq!(m.request_latency.count(), m.requests_completed);
    assert!(m.request_latency.min() > 0);
    assert!(m.latency_p50_ms() > 0.0);
    assert!(m.latency_p99_ms() >= m.latency_p50_ms());
}

#[test]
fn sais_improves_median_and_tail() {
    let s = run(PolicyChoice::SourceAware);
    let b = run(PolicyChoice::LowestLoaded);
    assert!(
        s.latency_p50_ms() < b.latency_p50_ms(),
        "p50: SAIs {:.3} ms vs irqbalance {:.3} ms",
        s.latency_p50_ms(),
        b.latency_p50_ms()
    );
    assert!(
        s.latency_p99_ms() <= b.latency_p99_ms(),
        "p99: SAIs {:.3} ms vs irqbalance {:.3} ms",
        s.latency_p99_ms(),
        b.latency_p99_ms()
    );
}

#[test]
fn latency_and_bandwidth_are_consistent() {
    // One blocking process: bandwidth ≈ transfer / mean request latency.
    let m = run(PolicyChoice::SourceAware);
    let mean_s = m.request_latency.mean() / 1e9;
    let implied_bw = 128.0 * 1024.0 / mean_s;
    let measured = m.bandwidth_bytes_per_sec();
    let ratio = implied_bw / measured;
    // The compute phase sits between requests, so the implied value is an
    // upper bound but of the same magnitude.
    assert!(
        (1.0..1.5).contains(&ratio),
        "implied {implied_bw:.0} vs measured {measured:.0} (ratio {ratio:.3})"
    );
}

#[test]
fn straggler_shows_up_in_the_tail() {
    let mut cfg = ScenarioConfig::testbed_3gig(16, 1024 * 1024);
    cfg.file_size = 16 << 20;
    cfg.policy = PolicyChoice::SourceAware;
    let healthy = cfg.clone().run();
    cfg.faults.stragglers = vec![(0, 100.0)];
    let slow = cfg.run();
    let tail_blowup = slow.latency_p99_ms() / healthy.latency_p99_ms();
    assert!(tail_blowup > 1.5, "p99 blow-up {tail_blowup:.2}");
}
