//! End-to-end flight-recorder tests: run a real scenario with
//! observability on and check the span tree, the Perfetto export, the
//! stage histograms and the metric snapshot — and that none of it ever
//! perturbs simulated results.

use sais_core::scenario::{ObsConfig, PolicyChoice, ScenarioConfig};
use sais_obs::json::JsonValue;
use sais_obs::{perfetto, Stage};

/// A small instrumented run: the 3-Gigabit testbed, 2 MB per client so the
/// whole span tree fits comfortably in the default capacity.
fn demo(policy: PolicyChoice, obs: ObsConfig) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::testbed_3gig(8, 512 << 10);
    cfg.file_size = 2 << 20;
    cfg.with_policy(policy).with_observability(obs)
}

#[test]
fn trace_export_is_valid_perfetto_with_full_lineage() {
    let (m, cluster) = demo(PolicyChoice::SourceAware, ObsConfig::full()).run_full();
    let rec = cluster.recorder();
    assert!(rec.is_enabled());
    assert_eq!(rec.dropped(), 0, "demo run must fit the span capacity");

    // Every read request span fans out into strip spans, and every strip
    // carries at least one interrupt child and exactly one copy child,
    // all nested inside the strip's interval.
    let reads: Vec<_> = rec.roots().filter(|(_, s)| s.name == "read").collect();
    assert_eq!(reads.len() as u64, m.requests_completed);
    for (id, _read) in &reads {
        let strips: Vec<_> = rec
            .children(*id)
            .filter(|(_, s)| s.name == "strip")
            .collect();
        assert!(!strips.is_empty(), "read span without strip fan-out");
        for (sid, strip) in &strips {
            let irqs = rec.children(*sid).filter(|(_, c)| c.name == "irq").count();
            let copies = rec.children(*sid).filter(|(_, c)| c.name == "copy").count();
            assert!(irqs >= 1, "strip without interrupt spans");
            assert_eq!(copies, 1, "strip must have exactly one consume span");
            for (_, c) in rec.children(*sid) {
                assert!(
                    c.start >= strip.start && c.end <= strip.end,
                    "child span escapes its strip interval"
                );
            }
        }
    }
    let strip_spans = rec.spans().iter().filter(|s| s.name == "strip").count() as u64;
    assert_eq!(strip_spans, m.strips_delivered);

    // The exported JSON passes structural validation: well-formed events,
    // no dangling parents, children contained in their parents.
    let text = perfetto::to_chrome_json(rec);
    let stats = perfetto::validate(&text).expect("exporter emits valid trace JSON");
    assert_eq!(stats.spans, rec.spans().len());
    assert_eq!(stats.instants, rec.instants().len());
    assert_eq!((stats.spans + stats.instants) as u64, rec.recorded());
    assert!(stats.child_spans > 0, "parent/child links survive export");
    assert!(stats.metadata > 0, "process/thread names are exported");
    assert!(stats.instants as u64 >= m.requests_completed);
}

#[test]
fn sais_collapses_the_migration_stall_stage() {
    let stages_only = ObsConfig {
        stages: true,
        ..ObsConfig::default()
    };
    let (rr, rr_cluster) = demo(PolicyChoice::RoundRobin, stages_only.clone()).run_full();
    let (sa, sa_cluster) = demo(PolicyChoice::SourceAware, stages_only).run_full();

    let rr_stall = rr_cluster.stages().get(Stage::MigrationStall).unwrap();
    let sa_stall = sa_cluster.stages().get(Stage::MigrationStall).unwrap();
    assert!(rr_stall.count() > 0 && sa_stall.count() > 0);
    assert!(
        rr_stall.mean() > 0.0,
        "round-robin consumers stall on cache migration"
    );
    assert_eq!(
        sa_stall.max(),
        0,
        "under SAIs the handling core already owns the strip's lines"
    );
    // The stall shows up end to end: SAIs requests finish no slower.
    let rr_total = rr_cluster.stages().get(Stage::RequestTotal).unwrap();
    let sa_total = sa_cluster.stages().get(Stage::RequestTotal).unwrap();
    assert!(sa_total.mean() < rr_total.mean());
    // RunMetrics carries the same histograms for the bench tables.
    assert_eq!(
        rr.stages.get(Stage::MigrationStall).unwrap().count(),
        rr_stall.count()
    );
    assert_eq!(sa.stages.get(Stage::MigrationStall).unwrap().max(), 0);
}

#[test]
fn observability_never_perturbs_simulated_results() {
    let base = demo(PolicyChoice::SourceAware, ObsConfig::default()).run();
    let full = demo(PolicyChoice::SourceAware, ObsConfig::full()).run();
    assert_eq!(base.wall_time, full.wall_time);
    assert_eq!(base.bytes_delivered, full.bytes_delivered);
    assert_eq!(base.l2_accesses, full.l2_accesses);
    assert_eq!(base.l2_misses, full.l2_misses);
    assert_eq!(base.interrupts, full.interrupts);
    assert_eq!(base.events_dispatched, full.events_dispatched);
    assert_eq!(base.queue_high_water, full.queue_high_water);
}

#[test]
fn disabled_observability_records_nothing() {
    let (_, cluster) = demo(PolicyChoice::SourceAware, ObsConfig::default()).run_full();
    let rec = cluster.recorder();
    assert!(!rec.is_enabled());
    assert!(rec.spans().is_empty());
    assert_eq!(rec.recorded(), 0);
    assert!(!cluster.stages().is_enabled());
    assert_eq!(
        rec.span_heap_capacity(),
        0,
        "disabled recorder never allocates"
    );
}

#[test]
fn telemetry_sampler_is_bit_inert_and_off_by_default() {
    // Off by default: no windows, no rotations, no detector work.
    let off = demo(PolicyChoice::SourceAware, ObsConfig::default()).run();
    assert!(!off.telemetry.is_enabled());
    assert_eq!(off.telemetry.windows().count(), 0);
    assert_eq!(off.window_rotations, 0);
    assert_eq!(off.detector_evals, 0);
    assert!(off.telemetry_verdicts.is_empty());

    // On: the sampler fills windows and the detectors run, but every
    // simulated result stays bit-identical — the sampler only reads
    // model-computed values, it never touches the RNG or the clock.
    let obs = ObsConfig {
        timeseries: true,
        ..ObsConfig::default()
    };
    let on = demo(PolicyChoice::SourceAware, obs).run();
    assert!(on.telemetry.is_enabled());
    assert!(on.telemetry.windows().count() > 0, "windows sampled");
    assert!(on.window_rotations > 0, "rotations counted");
    assert!(on.detector_evals > 0, "detectors evaluated each window");
    assert_eq!(off.wall_time, on.wall_time);
    assert_eq!(off.bytes_delivered, on.bytes_delivered);
    assert_eq!(off.l2_accesses, on.l2_accesses);
    assert_eq!(off.l2_misses, on.l2_misses);
    assert_eq!(off.interrupts, on.interrupts);
    assert_eq!(off.events_dispatched, on.events_dispatched);
    assert_eq!(off.queue_high_water, on.queue_high_water);
}

#[test]
fn metric_snapshot_exports_json_and_csv() {
    let (m, cluster) = demo(PolicyChoice::SourceAware, ObsConfig::full()).run_full();
    let snap = cluster.snapshot_metrics(m.wall_time);

    let json = snap.to_json();
    let doc = JsonValue::parse(&json).expect("snapshot JSON parses");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("sais-metrics-snapshot/v1")
    );
    let counters = doc.get("counters").expect("counters object");
    assert_eq!(
        counters
            .get("io.bytes_delivered")
            .and_then(JsonValue::as_u64),
        Some(m.bytes_delivered)
    );
    assert_eq!(
        counters.get("irq.routed").and_then(JsonValue::as_u64),
        Some(m.interrupts)
    );
    let hists = doc.get("histograms").expect("histograms object");
    for stage in sais_obs::STAGES {
        let h = hists
            .get(&format!("stage.{}", stage.name()))
            .unwrap_or_else(|| panic!("stage.{} missing from snapshot", stage.name()));
        assert!(h.get("count").and_then(JsonValue::as_u64).unwrap() > 0);
    }

    let csv = snap.to_csv();
    assert_eq!(csv.lines().next(), Some("metric,kind,value"));
    assert!(csv.contains(&format!("io.bytes_delivered,counter,{}", m.bytes_delivered)));
    assert!(csv.contains("stage.migration_stall.p99_ns,histogram,"));
}
