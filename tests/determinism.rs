//! Reproducibility contracts: the whole stack is bit-deterministic under a
//! fixed seed, and seed changes only produce bounded jitter.

use sais::prelude::*;

fn cfg(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::testbed_3gig(16, 512 * 1024);
    cfg.file_size = 8 << 20;
    cfg.seed = seed;
    cfg.policy = PolicyChoice::LowestLoaded; // exercises the RNG-adjacent paths
    cfg
}

#[test]
fn identical_seeds_are_bitwise_identical() {
    let a = cfg(42).run();
    let b = cfg(42).run();
    assert_eq!(a.wall_time, b.wall_time);
    assert_eq!(a.l2_accesses, b.l2_accesses);
    assert_eq!(a.l2_misses, b.l2_misses);
    assert_eq!(a.unhalted_cycles, b.unhalted_cycles);
    assert_eq!(a.irq_distribution, b.irq_distribution);
    assert_eq!(a.c2c_lines, b.c2c_lines);
    assert_eq!(a.strip_migrations, b.strip_migrations);
}

#[test]
fn different_seeds_jitter_mildly() {
    let a = cfg(1).run();
    let b = cfg(2).run();
    // Server-side jitter is bounded (±5 %); bandwidth must not swing more
    // than a few percent between seeds.
    let rel = (a.bandwidth_bytes_per_sec() - b.bandwidth_bytes_per_sec()).abs()
        / a.bandwidth_bytes_per_sec();
    assert!(rel < 0.05, "seed jitter too large: {rel:.4}");
    // But the runs must not be secretly identical either.
    assert_ne!(a.wall_time, b.wall_time);
}

#[test]
fn failure_injection_is_deterministic_too() {
    let mk = || {
        let mut c = cfg(7);
        c.strip_loss_prob = 0.05;
        c.hint_corruption_prob = 0.1;
        c.policy = PolicyChoice::SourceAware;
        c
    };
    let a = mk().run();
    let b = mk().run();
    assert_eq!(a.retransmits, b.retransmits);
    assert_eq!(a.parse_errors, b.parse_errors);
    assert_eq!(a.wall_time, b.wall_time);
}

#[test]
fn memsim_determinism() {
    let run = || {
        let mut c = MemSimConfig::testbed(MemSimMode::SiIrqbalance, 4);
        c.bytes_per_app = 8 << 20;
        c.run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.wall, b.wall);
    assert_eq!(a.c2c_lines, b.c2c_lines);
}
