//! Reproducibility contracts: the whole stack is bit-deterministic under a
//! fixed seed, and seed changes only produce bounded jitter.

use sais::prelude::*;

fn cfg(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::testbed_3gig(16, 512 * 1024);
    cfg.file_size = 8 << 20;
    cfg.seed = seed;
    cfg.policy = PolicyChoice::LowestLoaded; // exercises the RNG-adjacent paths
    cfg
}

#[test]
fn identical_seeds_are_bitwise_identical() {
    let a = cfg(42).run();
    let b = cfg(42).run();
    assert_eq!(a.wall_time, b.wall_time);
    assert_eq!(a.l2_accesses, b.l2_accesses);
    assert_eq!(a.l2_misses, b.l2_misses);
    assert_eq!(a.unhalted_cycles, b.unhalted_cycles);
    assert_eq!(a.irq_distribution, b.irq_distribution);
    assert_eq!(a.c2c_lines, b.c2c_lines);
    assert_eq!(a.strip_migrations, b.strip_migrations);
}

#[test]
fn different_seeds_jitter_mildly() {
    let a = cfg(1).run();
    let b = cfg(2).run();
    // Server-side jitter is bounded (±5 %); bandwidth must not swing more
    // than a few percent between seeds.
    let rel = (a.bandwidth_bytes_per_sec() - b.bandwidth_bytes_per_sec()).abs()
        / a.bandwidth_bytes_per_sec();
    assert!(rel < 0.05, "seed jitter too large: {rel:.4}");
    // But the runs must not be secretly identical either.
    assert_ne!(a.wall_time, b.wall_time);
}

#[test]
fn failure_injection_is_deterministic_too() {
    let mk = || {
        let mut c = cfg(7);
        c.faults.loss = 0.05;
        c.faults.corruption = 0.1;
        c.policy = PolicyChoice::SourceAware;
        c
    };
    let a = mk().run();
    let b = mk().run();
    assert_eq!(a.retransmits, b.retransmits);
    assert_eq!(a.parse_errors, b.parse_errors);
    assert_eq!(a.wall_time, b.wall_time);
}

#[test]
fn fault_plan_replays_bit_identically_including_traces() {
    // Same (seed, FaultPlan) pair ⇒ the same fault schedule, the same
    // metrics, and byte-identical exported traces.
    let mk = || {
        let mut c = cfg(11);
        c.policy = PolicyChoice::SourceAware;
        c.obs = sais::core::scenario::ObsConfig::full();
        c.faults = FaultPlan {
            loss: 0.04,
            corruption: 0.15,
            duplication: 0.05,
            reorder: 0.05,
            irq_delay: 0.2,
            irq_coalesce: 0.2,
            option_strip: 0.5,
            stragglers: vec![(1, 8.0)],
            ..FaultPlan::none()
        };
        c
    };
    let (a, ca) = mk().run_full();
    let (b, cb) = mk().run_full();
    assert_eq!(a.wall_time, b.wall_time);
    assert_eq!(a.retransmits, b.retransmits);
    assert_eq!(a.tcp_timeouts, b.tcp_timeouts);
    assert_eq!(a.tcp_duplicates, b.tcp_duplicates);
    assert_eq!(a.delayed_irqs, b.delayed_irqs);
    assert_eq!(a.coalesced_merges, b.coalesced_merges);
    assert_eq!(a.stripped_options, b.stripped_options);
    assert_eq!(a.degraded_flows, b.degraded_flows);
    assert_eq!(a.parse_errors, b.parse_errors);
    assert_eq!(a.irq_distribution, b.irq_distribution);
    let ja = sais::obs::perfetto::to_chrome_json(ca.recorder());
    let jb = sais::obs::perfetto::to_chrome_json(cb.recorder());
    assert_eq!(ja, jb, "exported traces diverged under identical FaultPlan");
}

#[test]
fn empty_fault_plan_never_perturbs_the_clean_stream() {
    // The fault RNG is a separate stream: with every fault probability at
    // zero nothing is ever drawn from it, so a run with `FaultPlan::none()`
    // — under ANY fault seed — is bit-identical to the default run.
    let baseline = cfg(42).run();
    let mut inert = cfg(42);
    inert.faults = FaultPlan {
        seed: 0xDEAD_BEEF, // different stream seed, zero probabilities
        ..FaultPlan::none()
    };
    let m = inert.run();
    assert_eq!(m.wall_time, baseline.wall_time);
    assert_eq!(m.l2_accesses, baseline.l2_accesses);
    assert_eq!(m.unhalted_cycles, baseline.unhalted_cycles);
    assert_eq!(m.irq_distribution, baseline.irq_distribution);
    assert_eq!(m.retransmits, 0);
    assert_eq!(m.stripped_options, 0);
    assert_eq!(m.degraded_flows, 0);
}

#[test]
fn memsim_determinism() {
    let run = || {
        let mut c = MemSimConfig::testbed(MemSimMode::SiIrqbalance, 4);
        c.bytes_per_app = 8 << 20;
        c.run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.wall, b.wall);
    assert_eq!(a.c2c_lines, b.c2c_lines);
}
