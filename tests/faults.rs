//! End-to-end contracts of the fault-injection layer: each injection
//! point degrades the run it targets without ever breaking delivery, and
//! SAIs in particular degrades *gracefully* — stripping its hint channel
//! turns it into RSS-style steering, it does not panic or misroute.

use sais::core::scenario::ObsConfig;
use sais::obs::Stage;
use sais::prelude::*;

fn base(policy: PolicyChoice) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::testbed_3gig(8, 512 * 1024);
    cfg.file_size = 8 << 20;
    cfg.policy = policy;
    cfg
}

#[test]
fn option_stripping_degrades_sais_to_rss_not_to_failure() {
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.faults.option_strip = 1.0;
    cfg.obs = ObsConfig::full();
    let clean = base(PolicyChoice::SourceAware).run();
    let m = cfg.run();
    // Delivery is untouched: every byte arrives, nothing panics.
    assert_eq!(m.bytes_delivered, clean.bytes_delivered);
    // The middlebox removed every hint before the NIC saw it...
    assert!(m.stripped_options > 0);
    assert_eq!(m.hinted_interrupts, 0, "no hint survives a 100% strip");
    assert!(
        m.parse_errors == 0,
        "stripped headers are valid, just tagless"
    );
    // ...so SAIs detected the missing option and degraded per-flow to
    // RSS-style steering: flows are marked degraded and the migration
    // cost the hint channel normally deletes is back.
    assert!(
        m.degraded_flows > 0,
        "hintless flows must be marked degraded"
    );
    assert!(
        m.strip_migrations > 0,
        "RSS steering reintroduces migrations"
    );
    let stall = m
        .stages
        .get(Stage::MigrationStall)
        .expect("stage histograms enabled");
    assert!(stall.count() > 0, "migration stalls reappear in the trace");
    assert!(stall.max() > 0, "and they cost nonzero time");
    // The clean run is the contrast: zero of all three.
    assert_eq!(clean.stripped_options, 0);
    assert_eq!(clean.degraded_flows, 0);
    assert_eq!(clean.strip_migrations, 0);
}

#[test]
fn partial_stripping_is_per_flow_and_proportional() {
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.faults.option_strip = 0.5;
    let m = cfg.run();
    // The middlebox is stateless per-flow: some flows lose every hint,
    // the rest keep every hint — so both populations are visible at once.
    assert!(m.stripped_options > 0);
    assert!(m.hinted_interrupts > 0, "clean flows keep their hints");
    assert!(m.degraded_flows > 0, "stripped flows degrade");
    assert_eq!(m.bytes_delivered, 8 << 20);
}

#[test]
fn loss_drives_the_retransmit_machinery_and_slows_the_run() {
    let clean = base(PolicyChoice::SourceAware).run();
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.faults.loss = 0.05;
    let lossy = cfg.run();
    assert!(lossy.retransmits > 0, "loss must cost retransmissions");
    assert!(lossy.wall_time > clean.wall_time, "recovery costs time");
    assert_eq!(lossy.bytes_delivered, clean.bytes_delivered);
    assert_eq!(clean.retransmits, 0);
    assert_eq!(clean.tcp_timeouts, 0);
}

#[test]
fn duplication_and_reordering_are_absorbed_by_the_receiver() {
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.faults.duplication = 0.1;
    cfg.faults.reorder = 0.1;
    let m = cfg.run();
    assert!(m.tcp_duplicates > 0, "duplicates must reach the receiver");
    assert_eq!(m.bytes_delivered, 8 << 20, "but are never double-counted");
}

#[test]
fn irq_coalescing_faults_merge_batches_without_losing_frames() {
    let clean = base(PolicyChoice::SourceAware).run();
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.faults.irq_coalesce = 0.5;
    let m = cfg.run();
    assert!(m.coalesced_merges > 0);
    assert!(
        m.interrupts < clean.interrupts,
        "merged batches mean fewer interrupts ({} vs {})",
        m.interrupts,
        clean.interrupts
    );
    assert_eq!(m.bytes_delivered, clean.bytes_delivered);
}

#[test]
fn delayed_interrupts_are_counted_and_harmless_to_delivery() {
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.faults.irq_delay = 0.3;
    let m = cfg.run();
    assert!(m.delayed_irqs > 0);
    assert_eq!(m.bytes_delivered, 8 << 20);
}

#[test]
fn multiple_stragglers_slow_the_run_but_lose_nothing() {
    let healthy = base(PolicyChoice::SourceAware).run();
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.faults.stragglers = vec![(0, 30.0), (3, 50.0)];
    let slow = cfg.run();
    assert!(slow.wall_time > healthy.wall_time);
    assert_eq!(slow.bytes_delivered, healthy.bytes_delivered);
}

#[test]
fn fault_plan_validation_rejects_nonsense() {
    use sais::core::scenario::ConfigError;
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.faults.loss = 1.5;
    assert!(matches!(
        cfg.validate(),
        Err(ConfigError::BadProbability { .. })
    ));
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.faults.stragglers = vec![(99, 2.0)];
    assert!(matches!(
        cfg.validate(),
        Err(ConfigError::StragglerOutOfRange { .. })
    ));
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.faults.stragglers = vec![(1, 0.25)];
    assert!(matches!(
        cfg.validate(),
        Err(ConfigError::BadStragglerFactor { .. })
    ));
}

#[test]
fn irqbalance_is_indifferent_to_option_stripping() {
    // The middlebox only matters to policies that read the option: the
    // baseline's steering and bandwidth are identical with and without it.
    let clean = base(PolicyChoice::LowestLoaded).run();
    let mut cfg = base(PolicyChoice::LowestLoaded);
    cfg.faults.option_strip = 1.0;
    let stripped = cfg.run();
    assert_eq!(stripped.wall_time, clean.wall_time);
    assert_eq!(stripped.irq_distribution, clean.irq_distribution);
    assert_eq!(stripped.degraded_flows, 0);
}
