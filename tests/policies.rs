//! Cross-crate behavioural contracts of the steering policies.

use sais::prelude::*;

fn base(policy: PolicyChoice) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::testbed_3gig(16, 512 * 1024);
    cfg.file_size = 8 << 20;
    cfg.policy = policy;
    cfg
}

#[test]
fn sais_eliminates_strip_migration_entirely() {
    let m = base(PolicyChoice::SourceAware).run();
    assert_eq!(m.strip_migrations, 0);
    assert_eq!(m.c2c_lines, 0);
    assert_eq!(m.hinted_interrupts, m.interrupts);
}

#[test]
fn conventional_policies_migrate_nearly_every_strip() {
    for (policy, threshold) in [
        (PolicyChoice::RoundRobin, 0.8),
        (PolicyChoice::LowestLoaded, 0.8),
        // FlowHash keeps whole flows together, and the flows that happen to
        // hash onto the consumer's core stay local — with 16 server flows
        // over 8 cores a sizable minority can land there.
        (PolicyChoice::FlowHash, 0.5),
    ] {
        let m = base(policy).run();
        let frac = m.strip_migrations as f64 / m.strips_delivered as f64;
        assert!(
            frac > threshold,
            "{policy:?}: only {frac:.2} of strips migrated"
        );
    }
}

#[test]
fn dedicated_core_migrates_unless_consumer_is_the_dedicated_core() {
    // The Linux-on-AMD default: all interrupts on core 0. The single IOR
    // process also runs on core 0 here, so locality is accidental.
    let m = base(PolicyChoice::Dedicated).run();
    assert_eq!(m.strip_migrations, 0, "consumer happens to be core 0");
    // Move the consumer off core 0 and the migrations appear.
    let mut cfg = base(PolicyChoice::Dedicated);
    cfg.procs_per_client = 2; // proc 1 lands on core 1
    cfg.file_size = 8 << 20;
    let m2 = cfg.run();
    assert!(m2.strip_migrations > 0);
}

#[test]
fn sais_wins_all_four_paper_metrics() {
    let s = base(PolicyChoice::SourceAware).run();
    let b = base(PolicyChoice::LowestLoaded).run();
    assert!(s.bandwidth_bytes_per_sec() > b.bandwidth_bytes_per_sec());
    assert!(s.l2_miss_rate < b.l2_miss_rate);
    assert!(s.cpu_utilization < b.cpu_utilization);
    assert!(s.unhalted_cycles < b.unhalted_cycles);
}

#[test]
fn speedup_grows_with_server_count() {
    // The paper's headline trend (Fig. 5): more servers, more benefit.
    let speedup = |servers: usize| {
        let mut cfg = ScenarioConfig::testbed_3gig(servers, 128 * 1024);
        cfg.file_size = 16 << 20;
        let s = cfg.clone().with_policy(PolicyChoice::SourceAware).run();
        let b = cfg.with_policy(PolicyChoice::LowestLoaded).run();
        s.bandwidth_bytes_per_sec() / b.bandwidth_bytes_per_sec() - 1.0
    };
    let s8 = speedup(8);
    let s48 = speedup(48);
    assert!(s8 > 0.0);
    assert!(s48 > s8, "48 servers {s48:.4} vs 8 servers {s8:.4}");
}

#[test]
fn one_gig_gain_smaller_than_three_gig() {
    // §V-C: the NIC bottleneck caps what interrupt placement can win.
    let run = |ports: usize| {
        let mut cfg = if ports == 1 {
            ScenarioConfig::testbed_1gig(16, 128 * 1024)
        } else {
            ScenarioConfig::testbed_3gig(16, 128 * 1024)
        };
        cfg.file_size = 16 << 20;
        let s = cfg.clone().with_policy(PolicyChoice::SourceAware).run();
        let b = cfg.with_policy(PolicyChoice::LowestLoaded).run();
        s.bandwidth_bytes_per_sec() / b.bandwidth_bytes_per_sec() - 1.0
    };
    let g1 = run(1);
    let g3 = run(3);
    assert!(g1 > 0.0, "SAIs still wins at 1-Gig: {g1:.4}");
    assert!(g3 > g1 * 1.5, "3-Gig {g3:.4} should dominate 1-Gig {g1:.4}");
}

#[test]
fn hybrid_behaves_like_sais_when_uncontended() {
    let h = base(PolicyChoice::Hybrid).run();
    let s = base(PolicyChoice::SourceAware).run();
    // With one process the hinted core is rarely overloaded.
    let migration_rate = h.strip_migrations as f64 / h.strips_delivered as f64;
    assert!(migration_rate < 0.2, "hybrid migrated {migration_rate:.2}");
    let ratio = h.bandwidth_bytes_per_sec() / s.bandwidth_bytes_per_sec();
    assert!(ratio > 0.9, "hybrid within 10% of SAIs: {ratio:.3}");
}

#[test]
fn corrupted_hints_fall_back_to_baseline_steering() {
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.faults.corruption = 1.0; // every header corrupted
    let m = cfg.run();
    // Most corruptions break the checksum → no hint → fallback; a small
    // share of bit flips may still parse (or even hit the option byte and
    // parse to a different core).
    assert!(m.parse_errors > 0);
    assert!(
        m.hinted_interrupts < m.interrupts / 2,
        "most interrupts must lose their hint"
    );
    assert_eq!(m.bytes_delivered, 8 << 20);
}

#[test]
fn irq_affinity_mask_defeats_sais() {
    // `/proc/irq/N/smp_affinity` interplay: if the administrator pins the
    // NIC IRQs to cores 1–2 while the application runs on core 0, the
    // I/O APIC clamps every SAIs choice and the migrations come back.
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.irq_affinity_mask = Some(0b0110);
    let m = cfg.run();
    assert_eq!(m.clamped_interrupts, m.interrupts, "every choice clamped");
    assert!(m.strip_migrations > 0, "locality lost to the mask");
    assert_eq!(m.bytes_delivered, 8 << 20, "but nothing breaks");
    // A mask that *includes* the consumer changes nothing.
    let mut ok = base(PolicyChoice::SourceAware);
    ok.irq_affinity_mask = Some(0b0001);
    let m2 = ok.run();
    assert_eq!(m2.strip_migrations, 0);
    assert_eq!(m2.clamped_interrupts, 0);
}

#[test]
fn irq_distribution_shapes() {
    let rr = base(PolicyChoice::RoundRobin).run();
    let max = *rr.irq_distribution.iter().max().unwrap() as f64;
    let min = *rr.irq_distribution.iter().min().unwrap() as f64;
    assert!(
        min / max > 0.95,
        "round-robin is uniform: {:?}",
        rr.irq_distribution
    );

    let ded = base(PolicyChoice::Dedicated).run();
    assert_eq!(
        ded.irq_distribution.iter().filter(|&&c| c > 0).count(),
        1,
        "dedicated uses exactly one core"
    );

    let sais = base(PolicyChoice::SourceAware).run();
    assert_eq!(
        sais.irq_distribution.iter().filter(|&&c| c > 0).count(),
        1,
        "single consumer process ⇒ all interrupts on its core"
    );
}
