//! End-to-end conservation: every byte requested is served, delivered,
//! and consumed exactly once, under every policy and failure mode.

use sais::prelude::*;

fn base(policy: PolicyChoice) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::testbed_3gig(8, 512 * 1024);
    cfg.file_size = 8 << 20;
    cfg.policy = policy;
    cfg
}

#[test]
fn bytes_conserved_under_every_policy() {
    for policy in [
        PolicyChoice::RoundRobin,
        PolicyChoice::Dedicated,
        PolicyChoice::LowestLoaded,
        PolicyChoice::FlowHash,
        PolicyChoice::SourceAware,
        PolicyChoice::Hybrid,
    ] {
        let m = base(policy).run();
        assert_eq!(m.bytes_delivered, 8 << 20, "{policy:?}");
        assert_eq!(m.requests_completed, 16, "{policy:?}");
        assert_eq!(m.strips_delivered, 128, "{policy:?}");
    }
}

#[test]
fn bytes_conserved_across_transfer_sizes_and_servers() {
    for transfer in [64u64 << 10, 128 << 10, 1 << 20, 2 << 20] {
        for servers in [1usize, 3, 8, 48] {
            let mut cfg = base(PolicyChoice::SourceAware);
            cfg.transfer_size = transfer;
            cfg.servers = servers;
            let m = cfg.run();
            assert_eq!(
                m.bytes_delivered,
                8 << 20,
                "transfer {transfer} servers {servers}"
            );
        }
    }
}

#[test]
fn unaligned_tail_request_is_not_lost() {
    // file_size not a multiple of transfer_size: the last read is short.
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.file_size = 8 * 1024 * 1024 + 192 * 1024;
    cfg.transfer_size = 512 * 1024;
    let m = cfg.run();
    assert_eq!(m.bytes_delivered, 8 * 1024 * 1024 + 192 * 1024);
    assert_eq!(m.requests_completed, 17);
}

#[test]
fn multi_process_conservation() {
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.procs_per_client = 8;
    cfg.file_size = 16 << 20;
    let m = cfg.run();
    assert_eq!(m.bytes_delivered, 16 << 20);
}

#[test]
fn multi_client_conservation() {
    for policy in [PolicyChoice::SourceAware, PolicyChoice::LowestLoaded] {
        let mut cfg = base(policy);
        cfg.clients = 5;
        let m = cfg.run();
        assert_eq!(m.bytes_delivered, 5 * (8 << 20));
        assert_eq!(m.per_client_bw.len(), 5);
        assert!(m.per_client_bw.iter().all(|&b| b > 0.0));
    }
}

#[test]
fn conservation_survives_loss_corruption_and_stragglers() {
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.strip_loss_prob = 0.05;
    cfg.hint_corruption_prob = 0.3;
    cfg.straggler = Some((2, 25.0));
    let m = cfg.run();
    assert_eq!(m.bytes_delivered, 8 << 20);
    assert!(m.retransmits > 0);
    assert!(m.parse_errors > 0);
}

#[test]
fn strips_match_layout_arithmetic() {
    // 8 MB in 512 KB transfers over 64 KB strips = 128 strips; interrupts
    // are at least one per strip and match the NIC's count.
    let m = base(PolicyChoice::SourceAware).run();
    assert!(m.interrupts >= m.strips_delivered);
    let dist_sum: u64 = m.irq_distribution.iter().sum();
    assert_eq!(dist_sum, m.interrupts);
}
