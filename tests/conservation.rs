//! End-to-end conservation: every byte requested is served, delivered,
//! and consumed exactly once, under every policy and failure mode.

use sais::prelude::*;

fn base(policy: PolicyChoice) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::testbed_3gig(8, 512 * 1024);
    cfg.file_size = 8 << 20;
    cfg.policy = policy;
    cfg
}

#[test]
fn bytes_conserved_under_every_policy() {
    for policy in [
        PolicyChoice::RoundRobin,
        PolicyChoice::Dedicated,
        PolicyChoice::LowestLoaded,
        PolicyChoice::FlowHash,
        PolicyChoice::SourceAware,
        PolicyChoice::Hybrid,
    ] {
        let m = base(policy).run();
        assert_eq!(m.bytes_delivered, 8 << 20, "{policy:?}");
        assert_eq!(m.requests_completed, 16, "{policy:?}");
        assert_eq!(m.strips_delivered, 128, "{policy:?}");
    }
}

#[test]
fn bytes_conserved_across_transfer_sizes_and_servers() {
    for transfer in [64u64 << 10, 128 << 10, 1 << 20, 2 << 20] {
        for servers in [1usize, 3, 8, 48] {
            let mut cfg = base(PolicyChoice::SourceAware);
            cfg.transfer_size = transfer;
            cfg.servers = servers;
            let m = cfg.run();
            assert_eq!(
                m.bytes_delivered,
                8 << 20,
                "transfer {transfer} servers {servers}"
            );
        }
    }
}

#[test]
fn unaligned_tail_request_is_not_lost() {
    // file_size not a multiple of transfer_size: the last read is short.
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.file_size = 8 * 1024 * 1024 + 192 * 1024;
    cfg.transfer_size = 512 * 1024;
    let m = cfg.run();
    assert_eq!(m.bytes_delivered, 8 * 1024 * 1024 + 192 * 1024);
    assert_eq!(m.requests_completed, 17);
}

#[test]
fn multi_process_conservation() {
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.procs_per_client = 8;
    cfg.file_size = 16 << 20;
    let m = cfg.run();
    assert_eq!(m.bytes_delivered, 16 << 20);
}

#[test]
fn multi_client_conservation() {
    for policy in [PolicyChoice::SourceAware, PolicyChoice::LowestLoaded] {
        let mut cfg = base(policy);
        cfg.clients = 5;
        let m = cfg.run();
        assert_eq!(m.bytes_delivered, 5 * (8 << 20));
        assert_eq!(m.per_client_bw.len(), 5);
        assert!(m.per_client_bw.iter().all(|&b| b > 0.0));
    }
}

#[test]
fn conservation_survives_loss_corruption_and_stragglers() {
    let mut cfg = base(PolicyChoice::SourceAware);
    cfg.faults.loss = 0.05;
    cfg.faults.corruption = 0.3;
    cfg.faults.stragglers = vec![(2, 25.0)];
    let m = cfg.run();
    assert_eq!(m.bytes_delivered, 8 << 20);
    assert!(m.retransmits > 0);
    assert!(m.parse_errors > 0);
}

#[test]
fn conservation_holds_under_every_fault_plan() {
    // A grid of fault plans exercising each injection point alone and all
    // of them together. Whatever the plan does to timing, routing or the
    // header bytes, every requested byte must still arrive exactly once.
    let plans: Vec<FaultPlan> = vec![
        FaultPlan {
            loss: 0.08,
            ..FaultPlan::none()
        },
        FaultPlan {
            duplication: 0.1,
            reorder: 0.1,
            ..FaultPlan::none()
        },
        FaultPlan {
            corruption: 0.4,
            ..FaultPlan::none()
        },
        FaultPlan {
            irq_delay: 0.5,
            irq_coalesce: 0.5,
            ..FaultPlan::none()
        },
        FaultPlan {
            option_strip: 1.0,
            ..FaultPlan::none()
        },
        FaultPlan {
            stragglers: vec![(0, 10.0), (5, 30.0)],
            ..FaultPlan::none()
        },
        FaultPlan {
            seed: 7,
            loss: 0.03,
            corruption: 0.2,
            duplication: 0.05,
            reorder: 0.05,
            irq_delay: 0.3,
            irq_coalesce: 0.3,
            option_strip: 0.5,
            stragglers: vec![(3, 15.0)],
            ..FaultPlan::none()
        },
    ];
    for (i, plan) in plans.into_iter().enumerate() {
        for policy in [PolicyChoice::SourceAware, PolicyChoice::LowestLoaded] {
            let mut cfg = base(policy);
            cfg.faults = plan.clone();
            let m = cfg.run();
            assert_eq!(m.bytes_delivered, 8 << 20, "plan {i} {policy:?}");
            assert_eq!(m.strips_delivered, 128, "plan {i} {policy:?}");
        }
    }
}

#[test]
fn strips_match_layout_arithmetic() {
    // 8 MB in 512 KB transfers over 64 KB strips = 128 strips; interrupts
    // are at least one per strip and match the NIC's count.
    let m = base(PolicyChoice::SourceAware).run();
    assert!(m.interrupts >= m.strips_delivered);
    let dist_sum: u64 = m.irq_distribution.iter().sum();
    assert_eq!(dist_sum, m.interrupts);
}
