//! The Fig. 12 scenario: many client nodes hammering 8 PVFS servers.
//! Shows aggregate bandwidth saturating at the servers' uplink capacity
//! and the per-client effect of interrupt steering shrinking as the
//! servers become the bottleneck.
//!
//! ```text
//! cargo run --release --example multi_client
//! ```

use sais::metrics::Table;
use sais::prelude::*;

fn main() {
    println!("multi-client scalability — 8 PVFS servers (1 GbE each), 1M transfers\n");
    let mut table = Table::new(
        "aggregate bandwidth vs client count",
        &[
            "clients",
            "Irqbalance MB/s",
            "SAIs MB/s",
            "speed-up",
            "server-uplink ceiling",
        ],
    );
    // 8 servers × 1 GbE = 1000 MB/s aggregate ceiling.
    let ceiling = 8.0 * 125.0;
    for clients in [1usize, 2, 4, 8, 16, 24] {
        let p = MultiClientPoint::measure(clients, 16 << 20);
        table.row(&[
            clients.to_string(),
            format!("{:.1}", p.irqbalance_bw / 1e6),
            format!("{:.1}", p.sais_bw / 1e6),
            format!("{:+.2}%", p.speedup() * 100.0),
            format!("{:.0}% used", p.sais_bw / 1e6 / ceiling * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Past ~8 clients the 8 servers' uplinks saturate: per-client request \
         rate (the paper's N_R) falls,\nand with it the margin interrupt \
         placement can win — exactly the eq. (5)/(6) coupling of §III."
    );
}
