//! Auto-tuning demo: search the steering-policy space for a deployment
//! and watch source-awareness win exactly where the paper says it should —
//! and tie exactly where it says it can't help.
//!
//! ```text
//! cargo run --release --example policy_tuner
//! ```

use sais::core::scenario::IoDirection;
use sais::metrics::Table;
use sais::prelude::*;
use sais::workload::autotune;

fn show(name: &str, base: &ScenarioConfig) {
    let result = autotune::tune(base);
    let mut table = Table::new(
        format!("{name} — candidates ranked by measured bandwidth"),
        &[
            "rank",
            "policy",
            "MB/s",
            "p99 latency (ms)",
            "migrated strips",
        ],
    );
    for (i, e) in result.ranking.iter().enumerate() {
        table.row(&[
            (i + 1).to_string(),
            e.policy.label().to_string(),
            format!("{:.2}", e.metrics.bandwidth_mbs()),
            format!("{:.3}", e.metrics.latency_p99_ms()),
            e.metrics.strip_migrations.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "winner: {} (margin over runner-up: {:+.2}%)\n",
        result.best().label(),
        result.margin() * 100.0
    );
}

fn main() {
    println!("searching 7 steering policies per deployment…\n");

    let mut reads = ScenarioConfig::testbed_3gig(16, 128 * 1024);
    reads.file_size = 32 << 20;
    reads.procs_per_client = 2;
    show("parallel READ, 16 servers, 3-Gigabit NIC", &reads);

    let mut writes = reads.clone();
    writes.direction = IoDirection::Write;
    writes.transfer_size = 512 * 1024;
    show("parallel WRITE, same deployment", &writes);

    println!(
        "Reads: the tuner rediscovers source-awareness without being told \
         why — exactly the paper's\nclaim against static tools (VTune, \
         autopin, manual 82575/82599 assignment). Writes: every\npolicy ties; \
         there is nothing for interrupt placement to win."
    );
}
