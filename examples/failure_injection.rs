//! Robustness demo: SAIs under packet loss, header corruption and a
//! straggling I/O server. The interesting property is *graceful
//! degradation*: a corrupt or missing hint must never panic or misroute —
//! the interrupt silently falls back to the conventional policy.
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```

use sais::metrics::Table;
use sais::prelude::*;

fn base() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::testbed_3gig(16, 512 * 1024);
    cfg.file_size = 32 << 20;
    cfg.policy = PolicyChoice::SourceAware;
    cfg
}

fn main() {
    println!("failure injection — SAIs, 16 servers, 3-Gigabit NIC, 32 MB read\n");
    let mut table = Table::new(
        "graceful degradation",
        &[
            "scenario",
            "MB/s",
            "retransmits",
            "parse errors",
            "hinted irqs",
            "migrated strips",
        ],
    );

    let healthy = base().run();
    let mut row = |name: &str, m: &RunMetrics| {
        table.row(&[
            name.to_string(),
            format!("{:.2}", m.bandwidth_mbs()),
            m.retransmits.to_string(),
            m.parse_errors.to_string(),
            format!("{}/{}", m.hinted_interrupts, m.interrupts),
            m.strip_migrations.to_string(),
        ]);
    };
    row("healthy", &healthy);

    let mut lossy = base();
    lossy.faults.loss = 0.02;
    row("2% packet loss", &lossy.run());

    let mut corrupt = base();
    corrupt.faults.corruption = 0.25;
    let c = corrupt.run();
    assert!(c.parse_errors > 0, "corruption must be observed");
    row("25% header corruption", &c);

    let mut straggler = base();
    straggler.faults.stragglers = vec![(3, 20.0)];
    row("server 3 is 20x slow", &straggler.run());

    let mut stripped = base();
    stripped.faults.option_strip = 1.0;
    let s = stripped.run();
    assert_eq!(s.hinted_interrupts, 0, "middlebox removed every hint");
    row("middlebox strips option", &s);

    let mut everything = base();
    everything.faults.loss = 0.02;
    everything.faults.corruption = 0.25;
    everything.faults.option_strip = 0.5;
    everything.faults.stragglers = vec![(3, 20.0)];
    let e = everything.run();
    assert_eq!(e.bytes_delivered, 32 << 20, "all bytes still delivered");
    row("all of the above", &e);

    println!("{}", table.render());
    println!(
        "Every scenario delivered all {} MB. Corrupted hints fail closed: \
         SrcParser rejects the header\n(checksum/options validation) and the \
         interrupt falls back to irqbalance steering — a few strips\nmigrate, \
         nothing breaks.",
        32
    );
}
