//! Quickstart: run one SAIs-vs-irqbalance comparison and print the four
//! metrics the paper reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sais::prelude::*;

fn main() {
    // The paper's testbed: 8-core 2.7 GHz client, 3×1 GbE bonded NIC,
    // PVFS with 16 I/O servers and 64 KB strips; IOR reads with 512 KB
    // transfers (file size scaled down from the paper's 10 GB for an
    // interactive run — bandwidth is steady-state and size-invariant).
    let mut cfg = ScenarioConfig::testbed_3gig(16, 512 * 1024);
    cfg.file_size = 64 * 1024 * 1024;

    println!(
        "simulating {} MB IOR read, 16 PVFS servers, 3-Gigabit NIC…\n",
        cfg.file_size >> 20
    );

    let irqb = cfg.clone().with_policy(PolicyChoice::LowestLoaded).run();
    let sais = cfg.with_policy(PolicyChoice::SourceAware).run();

    let row = |name: &str, b: String, s: String, better: &str| {
        println!("{name:<22} {b:>14} {s:>14}   {better}");
    };
    println!("{:<22} {:>14} {:>14}", "", "Irqbalance", "SAIs");
    row(
        "bandwidth (MB/s)",
        format!("{:.2}", irqb.bandwidth_mbs()),
        format!("{:.2}", sais.bandwidth_mbs()),
        &format!(
            "speed-up {:+.2}%",
            (sais.bandwidth_mbs() / irqb.bandwidth_mbs() - 1.0) * 100.0
        ),
    );
    row(
        "L2 miss rate",
        format!("{:.2}%", irqb.l2_miss_rate * 100.0),
        format!("{:.2}%", sais.l2_miss_rate * 100.0),
        &format!(
            "reduction {:.2}%",
            (1.0 - sais.l2_miss_rate / irqb.l2_miss_rate) * 100.0
        ),
    );
    row(
        "CPU utilization",
        format!("{:.2}%", irqb.cpu_utilization * 100.0),
        format!("{:.2}%", sais.cpu_utilization * 100.0),
        "(irqbalance burns cycles moving data)",
    );
    row(
        "CPU_CLK_UNHALTED",
        format!("{:.2}e9", irqb.unhalted_cycles as f64 / 1e9),
        format!("{:.2}e9", sais.unhalted_cycles as f64 / 1e9),
        &format!(
            "reduction {:.2}%",
            (1.0 - sais.unhalted_cycles as f64 / irqb.unhalted_cycles as f64) * 100.0
        ),
    );
    row(
        "strip migrations",
        irqb.strip_migrations.to_string(),
        sais.strip_migrations.to_string(),
        "(the mechanism: peer interrupts stay on the consuming core)",
    );
    println!(
        "\ninterrupt distribution over cores (irqbalance): {:?}",
        irqb.irq_distribution
    );
    println!(
        "interrupt distribution over cores (SAIs):       {:?}",
        sais.irq_distribution
    );
    println!(
        "\n{} of {} SAIs interrupts followed the aff_core_id hint.",
        sais.hinted_interrupts, sais.interrupts
    );
}
