//! The workload the paper's introduction motivates: an I/O-intensive
//! parallel application reading a large striped file through IOR, swept
//! over transfer sizes and I/O APIs.
//!
//! ```text
//! cargo run --release --example ior_sweep
//! ```

use sais::metrics::Table;
use sais::prelude::*;
use sais::workload::IorApi;

fn main() {
    let servers = 16;
    let ports = 3;
    println!("IOR read sweep — {servers} PVFS servers, 3-Gigabit client NIC\n");

    let mut table = Table::new(
        "bandwidth by transfer size and API",
        &[
            "API",
            "transfer",
            "Irqbalance MB/s",
            "SAIs MB/s",
            "speed-up",
        ],
    );
    for api in [IorApi::Posix, IorApi::MpiIo, IorApi::Hdf5] {
        for transfer in [128u64 << 10, 512 << 10, 2 << 20] {
            let mut ior = IorConfig::paper_default(transfer);
            ior.api = api;
            ior.block_size = 64 << 20;
            let base = ior.to_scenario(servers, ports);
            let irqb = base.clone().with_policy(PolicyChoice::LowestLoaded).run();
            let sais = base.with_policy(PolicyChoice::SourceAware).run();
            table.row(&[
                format!("{api:?}"),
                format!("{}K", transfer >> 10),
                format!("{:.2}", irqb.bandwidth_mbs()),
                format!("{:.2}", sais.bandwidth_mbs()),
                format!(
                    "{:+.2}%",
                    (sais.bandwidth_mbs() / irqb.bandwidth_mbs() - 1.0) * 100.0
                ),
            ]);
        }
    }
    println!("{}", table.render());

    // The multi-program case of §III-D: one IOR rank per core.
    println!("multi-program (8 ranks, one per core), 1M transfers:");
    let mut ior = IorConfig::paper_default(1 << 20);
    ior.nprocs = 8;
    ior.block_size = 64 << 20;
    let base = ior.to_scenario(servers, ports);
    let irqb = base.clone().with_policy(PolicyChoice::LowestLoaded).run();
    let sais = base.with_policy(PolicyChoice::SourceAware).run();
    println!(
        "  Irqbalance {:.2} MB/s ({} strip migrations) | SAIs {:.2} MB/s ({} migrations)",
        irqb.bandwidth_mbs(),
        irqb.strip_migrations,
        sais.bandwidth_mbs(),
        sais.strip_migrations
    );
}
