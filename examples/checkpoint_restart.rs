//! Checkpoint/restart lifecycle: how much application time does interrupt
//! steering recover for a data-intensive HPC job?
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```

use sais::metrics::Table;
use sais::prelude::*;
use sais::workload::CheckpointConfig;

fn main() {
    println!("checkpoint/restart — 4 ranks, 64 MB images, 16 PVFS servers, 3-Gigabit NIC\n");
    let mut table = Table::new(
        "application wall-time breakdown by restart count",
        &[
            "restarts",
            "policy",
            "compute",
            "checkpoint I/O",
            "restart I/O",
            "total",
            "compute efficiency",
        ],
    );
    for restarts in [0u64, 1, 4] {
        for policy in [PolicyChoice::LowestLoaded, PolicyChoice::SourceAware] {
            let mut cfg = CheckpointConfig::medium(policy);
            cfg.restarts = restarts;
            let r = cfg.run();
            table.row(&[
                restarts.to_string(),
                policy.label().to_string(),
                format!("{}", r.compute),
                format!("{}", r.checkpoint_io),
                format!("{}", r.restart_io),
                format!("{}", r.total()),
                format!("{:.1}%", r.compute_efficiency() * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Checkpoint writes are identical under both policies (no inbound data \
         to steer);\nevery restart read is where SAIs buys wall time back, so \
         requeue-heavy jobs gain the most."
    );
}
