//! The §VI experiment both ways: the deterministic DES model (Fig. 14)
//! and the real-threads version running on *this* machine's cores and
//! caches via bounded channels.
//!
//! ```text
//! cargo run --release --example memory_sim
//! ```

use sais::metrics::Table;
use sais::prelude::*;

fn main() {
    println!("§VI in-memory parallel I/O — NIC bottleneck removed\n");

    // Deterministic DES at the testbed's DDR2-667 bandwidth.
    let mut des = Table::new(
        "discrete-event model (testbed DRAM: 5333 MB/s)",
        &["apps", "Si-Irqbalance MB/s", "Si-SAIs MB/s", "speed-up"],
    );
    for apps in [1usize, 2, 4, 6, 8] {
        let mut s = MemSimConfig::testbed(MemSimMode::SiSais, apps);
        let mut b = MemSimConfig::testbed(MemSimMode::SiIrqbalance, apps);
        s.bytes_per_app = 32 << 20;
        b.bytes_per_app = 32 << 20;
        let (s, b) = (s.run(), b.run());
        des.row(&[
            apps.to_string(),
            format!("{:.1}", b.bandwidth / 1e6),
            format!("{:.1}", s.bandwidth / 1e6),
            format!("{:+.2}%", (s.bandwidth / b.bandwidth - 1.0) * 100.0),
        ]);
    }
    println!("{}", des.render());

    // Real threads on this machine (results are host-dependent).
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!("real threads on this host ({host_cores} logical cores):");
    let mut real = Table::new(
        "host measurement (bounded channel between reader and combiner)",
        &["apps", "Si-Irqbalance MB/s", "Si-SAIs MB/s", "speed-up"],
    );
    for apps in [1usize, 2, host_cores / 2, host_cores] {
        if apps == 0 {
            continue;
        }
        let sais = MemExpConfig::new(MemExpMode::SiSais, apps).run();
        let irqb = MemExpConfig::new(MemExpMode::SiIrqbalance, apps).run();
        assert_eq!(
            sais.checksum, irqb.checksum,
            "both modes must move identical data"
        );
        real.row(&[
            apps.to_string(),
            format!("{:.1}", irqb.bandwidth / 1e6),
            format!("{:.1}", sais.bandwidth / 1e6),
            format!("{:+.2}%", (sais.bandwidth / irqb.bandwidth - 1.0) * 100.0),
        ]);
    }
    println!("{}", real.render());
    println!(
        "Checksums matched between modes: both configurations moved the same \
         bytes;\nthe difference is purely where the caches were when the data \
         was consumed."
    );
}
