#!/usr/bin/env bash
# Full verification sweep: build, lint, every test, every example, every
# figure (quick scale), and the Criterion benches in test mode.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --workspace --release

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace --release

echo "== doctests =="
cargo test --workspace --doc

echo "== examples =="
for ex in quickstart ior_sweep multi_client memory_sim failure_injection \
          checkpoint_restart policy_tuner; do
    echo "-- example: $ex"
    cargo run --release --example "$ex" >/dev/null
done

echo "== figures (quick) =="
cargo run --release -p sais-bench --bin all_figures -- --quick >/dev/null

echo "== criterion (smoke) =="
cargo bench -p sais-bench --bench engine -- --test >/dev/null

echo "ALL CHECKS PASSED"
